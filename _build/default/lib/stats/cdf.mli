(** Empirical cumulative distribution functions.

    Figures 3 and 4 of the paper are CDF plots; this module turns raw error
    samples into the (x, F(x)) series the bench harness prints. *)

type t
(** An immutable empirical CDF. *)

val of_samples : float array -> t
(** Build from raw samples.  Requires a non-empty sample. *)

val eval : t -> float -> float
(** [eval t x] is the fraction of samples [<= x]. *)

val inverse : t -> float -> float
(** [inverse t q] for [q] in [0,1]: smallest sample value [v] with
    [eval t v >= q]. *)

val size : t -> int
(** Number of underlying samples. *)

val points : t -> (float * float) array
(** Step-function knots as (value, cumulative fraction), sorted by value;
    suitable for printing a plottable series. *)

val series : t -> xs:float array -> (float * float) array
(** Resample the CDF at the given x positions. *)
