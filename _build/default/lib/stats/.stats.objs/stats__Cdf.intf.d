lib/stats/cdf.mli:
