lib/stats/running.mli:
