lib/stats/rng.mli:
