lib/stats/sample.mli:
