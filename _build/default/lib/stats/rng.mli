(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that every
    experiment is bit-reproducible from a single integer seed.  The generator
    is splitmix64, which is small, fast, and passes BigCrush; it is more than
    adequate for driving simulations (it is not cryptographic).

    A generator is a mutable state; [split] derives an independent stream,
    which lets concurrent subsystems (topology generation, probe jitter, ...)
    consume randomness without perturbing each other. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator.  Equal seeds yield equal streams. *)

val copy : t -> t
(** Independent copy with identical future output. *)

val split : t -> t
(** [split t] advances [t] once and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t n] is uniform on [0, n-1].  Requires [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform on [0, x). *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform on [lo, hi). *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Normal deviate (Box–Muller, one value per call). *)

val exponential : t -> rate:float -> float
(** Exponential deviate with the given rate (mean [1/rate]). *)

val pareto : t -> scale:float -> shape:float -> float
(** Pareto deviate; heavy-tailed, used for queuing-delay spikes. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** Log-normal deviate: [exp (gaussian mu sigma)]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> 'a array -> 'a array
(** [sample_without_replacement t k arr] draws [k] distinct elements.
    Requires [k <= Array.length arr]. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
