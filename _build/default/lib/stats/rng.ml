(* Splitmix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators", OOPSLA 2014.  The state is a single 64-bit counter advanced
   by a fixed odd gamma; output is a finalizing hash of the counter. *)

type t = { mutable state : int64; gamma : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Gamma values must be odd; this mixes a candidate into a "good" odd gamma
   as in the reference implementation. *)
let mix_gamma z =
  let z = Int64.logor (mix64 z) 1L in
  let n =
    let x = Int64.logxor z (Int64.shift_right_logical z 1) in
    (* popcount *)
    let rec count acc x = if Int64.equal x 0L then acc else count (acc + 1) (Int64.logand x (Int64.sub x 1L)) in
    count 0 x
  in
  if n < 24 then Int64.logxor z 0xAAAAAAAAAAAAAAAAL else z

let create seed = { state = mix64 (Int64.of_int seed); gamma = golden_gamma }

let copy t = { state = t.state; gamma = t.gamma }

let next_seed t =
  t.state <- Int64.add t.state t.gamma;
  t.state

let bits64 t = mix64 (next_seed t)

let split t =
  let s = next_seed t in
  let g = next_seed t in
  { state = mix64 s; gamma = mix_gamma g }

(* Uniform int in [0, n): rejection sampling on the low 62 bits to avoid
   modulo bias. *)
let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = 0x3FFF_FFFF_FFFF_FFFFL in
  let rec loop () =
    let bits = Int64.to_int (Int64.logand (bits64 t) mask) in
    let v = bits mod n in
    if bits - v + (n - 1) < 0 then loop () else v
  in
  loop ()

(* 53-bit mantissa float in [0, 1). *)
let unit_float t =
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let float t x = unit_float t *. x

let uniform t lo hi =
  if hi < lo then invalid_arg "Rng.uniform: empty interval";
  lo +. (unit_float t *. (hi -. lo))

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = unit_float t < p

let gaussian t ~mean ~stddev =
  (* Box–Muller; we deliberately discard the second deviate to keep the
     stream position independent of caller interleaving. *)
  let rec nonzero () =
    let u = unit_float t in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () in
  let u2 = unit_float t in
  let r = sqrt (-2.0 *. log u1) in
  mean +. (stddev *. r *. cos (2.0 *. Float.pi *. u2))

let exponential t ~rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: rate must be positive";
  let rec nonzero () =
    let u = unit_float t in
    if u > 0.0 then u else nonzero ()
  in
  -.log (nonzero ()) /. rate

let pareto t ~scale ~shape =
  if scale <= 0.0 || shape <= 0.0 then invalid_arg "Rng.pareto: parameters must be positive";
  let rec nonzero () =
    let u = unit_float t in
    if u > 0.0 then u else nonzero ()
  in
  scale /. Float.pow (nonzero ()) (1.0 /. shape)

let lognormal t ~mu ~sigma = exp (gaussian t ~mean:mu ~stddev:sigma)

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t k arr =
  let n = Array.length arr in
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  let copy = Array.copy arr in
  (* Partial Fisher–Yates: after i swaps, the first i slots are a uniform
     i-subset in uniform order. *)
  for i = 0 to k - 1 do
    let j = i + int t (n - i) in
    let tmp = copy.(i) in
    copy.(i) <- copy.(j);
    copy.(j) <- tmp
  done;
  Array.sub copy 0 k

let choose t arr =
  let n = Array.length arr in
  if n = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t n)
