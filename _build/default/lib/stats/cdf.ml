type t = { sorted : float array }

let of_samples xs =
  if Array.length xs = 0 then invalid_arg "Cdf.of_samples: empty sample";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  { sorted }

let size t = Array.length t.sorted

(* Index of the first element strictly greater than x, by binary search. *)
let upper_bound arr x =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if arr.(mid) <= x then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length arr)

let eval t x = float_of_int (upper_bound t.sorted x) /. float_of_int (size t)

let inverse t q =
  if q < 0.0 || q > 1.0 then invalid_arg "Cdf.inverse: q outside [0,1]";
  let n = size t in
  let k = int_of_float (Float.ceil (q *. float_of_int n)) in
  let k = if k <= 0 then 1 else if k > n then n else k in
  t.sorted.(k - 1)

let points t =
  let n = size t in
  Array.mapi (fun i v -> (v, float_of_int (i + 1) /. float_of_int n)) t.sorted

let series t ~xs = Array.map (fun x -> (x, eval t x)) xs
