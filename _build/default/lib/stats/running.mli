(** Online (single-pass) moment tracking, Welford's algorithm.

    Used by the simulator to accumulate per-link delay statistics and by the
    bench harness to report timing without retaining every sample. *)

type t
(** Mutable accumulator. *)

val create : unit -> t

val add : t -> float -> unit
(** Fold one observation in. *)

val count : t -> int
val mean : t -> float
(** Mean of the observations so far; 0 when empty. *)

val variance : t -> float
(** Unbiased variance; 0 when fewer than two observations. *)

val stddev : t -> float
val min : t -> float
(** Smallest observation; [infinity] when empty. *)

val max : t -> float
(** Largest observation; [neg_infinity] when empty. *)

val merge : t -> t -> t
(** Combine two accumulators (parallel Welford / Chan et al.). *)
