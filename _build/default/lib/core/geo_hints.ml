let land_mask ?(weight = 0.6) projection ~within_km =
  (* Simplify hard: the outlines are only ~100 km accurate to begin with,
     and every straddled solver cell pays for each coastline vertex. *)
  let mask = Geo.Region.simplify ~tolerance:12.0 (Geo.Landmass.region projection ~within_km) in
  if Geo.Region.is_empty mask then None
  else Some (Constr.positive_region mask ~weight ~source:"land-mask")

let city_hint ?(weight = 0.25) ?(radius_km = 120.0) projection coord ~source =
  let center = Geo.Projection.project projection coord in
  Constr.positive_disk ~center ~radius_km ~weight ~source

let uninhabited_mask ?(weight = 0.5) projection ~within_km =
  let mask =
    Geo.Region.simplify ~tolerance:12.0 (Geo.Landmass.uninhabited_region projection ~within_km)
  in
  if Geo.Region.is_empty mask then None
  else Some (Constr.negative_region mask ~weight ~source:"uninhabited-mask")
