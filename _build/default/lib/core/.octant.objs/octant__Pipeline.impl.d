lib/core/pipeline.ml: Array Calibration Constr Estimate Float Geo Geo_hints Hashtbl Heights List Option Printf Solver Sys Weight
