lib/core/weight.ml: Float
