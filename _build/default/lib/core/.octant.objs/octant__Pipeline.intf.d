lib/core/pipeline.mli: Calibration Constr Estimate Geo Solver Weight
