lib/core/geo_hints.ml: Constr Geo
