lib/core/solver.ml: Array Constr Float Geo Lazy List
