lib/core/estimate.ml: Format Geo
