lib/core/heights.mli: Geo
