lib/core/heights.ml: Array Float Geo Linalg List
