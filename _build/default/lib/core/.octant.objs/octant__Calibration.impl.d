lib/core/calibration.ml: Array Float Geo List Stats
