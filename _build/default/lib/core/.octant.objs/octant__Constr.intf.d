lib/core/constr.mli: Calibration Geo
