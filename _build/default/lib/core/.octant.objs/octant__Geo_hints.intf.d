lib/core/geo_hints.mli: Constr Geo
