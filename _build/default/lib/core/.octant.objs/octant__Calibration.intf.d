lib/core/calibration.mli:
