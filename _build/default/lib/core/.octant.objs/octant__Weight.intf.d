lib/core/weight.mli:
