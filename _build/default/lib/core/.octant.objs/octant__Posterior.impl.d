lib/core/posterior.ml: Float Geo List Solver
