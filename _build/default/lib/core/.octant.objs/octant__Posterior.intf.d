lib/core/posterior.mli: Geo Solver
