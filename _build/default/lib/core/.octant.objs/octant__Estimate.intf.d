lib/core/estimate.mli: Format Geo
