lib/core/solver.mli: Constr Geo
