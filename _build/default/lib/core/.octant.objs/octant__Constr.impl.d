lib/core/constr.ml: Array Calibration Float Geo Printf
