(** Geographic side constraints (paper §2.5).

    Octant folds non-measurement knowledge into the same constraint system:
    negative constraints from geography (hosts are not in oceans or other
    uninhabited areas) and weak positive constraints from registries
    (WHOIS-derived cities, zipcodes of other hosts in the same prefix).
    Because regions may be non-convex and disconnected, these need no
    ad-hoc post-processing — they are ordinary weighted constraints. *)

val land_mask :
  ?weight:float -> Geo.Projection.t -> within_km:float -> Constr.t option
(** Positive constraint covering the continents near the projection focus
    (default weight 0.6 — strong, but not strong enough to overrule several
    agreeing latency constraints).  [None] if no land is in range. *)

val city_hint :
  ?weight:float ->
  ?radius_km:float ->
  Geo.Projection.t ->
  Geo.Geodesy.coord ->
  source:string ->
  Constr.t
(** Weak positive constraint around a hinted location, e.g. a WHOIS
    registry city (default weight 0.25, radius 120 km — metro scale:
    registries are coarse and sometimes wrong, so the weight must be low
    enough that consistent latency evidence overrides a stale record). *)

val uninhabited_mask :
  ?weight:float -> Geo.Projection.t -> within_km:float -> Constr.t option
(** Negative constraint covering large deserts and other uninhabited areas
    near the projection focus (default weight 0.5) — the rest of the
    paper's §2.5 list.  [None] when none is in range. *)
