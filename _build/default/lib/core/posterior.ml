type entry = {
  region : Geo.Region.t;
  density : float; (* unnormalized, exp (w - w_top) *)
  mass : float;    (* normalized probability *)
}

type t = { entries : entry list (* sorted by density desc *) }

let of_solver solver =
  match Solver.cells solver with
  | [] -> invalid_arg "Posterior.of_solver: empty arrangement"
  | cells ->
      let top = List.fold_left (fun acc (_, w) -> Float.max acc w) neg_infinity cells in
      let raw =
        List.map
          (fun (region, w) ->
            let density = exp (w -. top) in
            (region, density, density *. Geo.Region.area region))
          cells
      in
      let total = List.fold_left (fun acc (_, _, m) -> acc +. m) 0.0 raw in
      let entries =
        List.map (fun (region, density, m) -> { region; density; mass = m /. total }) raw
        |> List.sort (fun a b -> compare b.density a.density)
      in
      { entries }

let find_cell t p = List.find_opt (fun e -> Geo.Region.contains e.region p) t.entries

let density_at t p = match find_cell t p with Some e -> e.density | None -> 0.0
let probability_at t p = match find_cell t p with Some e -> e.mass | None -> 0.0

let credible_region t ~confidence =
  if confidence <= 0.0 || confidence > 1.0 then
    invalid_arg "Posterior.credible_region: confidence must be in (0, 1]";
  let rec take acc mass = function
    | [] -> acc
    | e :: rest -> if mass >= confidence then acc else take (e :: acc) (mass +. e.mass) rest
  in
  let selected = take [] 0.0 t.entries in
  let selected = if selected = [] then [ List.hd t.entries ] else selected in
  Geo.Region.of_polygons (List.concat_map (fun e -> Geo.Region.pieces e.region) selected)

let mean_point t =
  List.fold_left
    (fun acc e -> Geo.Point.add acc (Geo.Point.scale e.mass (Geo.Region.centroid e.region)))
    Geo.Point.zero t.entries

let entropy_bits t =
  -.List.fold_left
      (fun acc e -> if e.mass > 0.0 then acc +. (e.mass *. (Float.log e.mass /. Float.log 2.0)) else acc)
      0.0 t.entries

let cells t = List.map (fun e -> (e.region, e.mass)) t.entries
