(** Probability measure over the arrangement (paper §2.4).

    "Weights enable Octant to associate a probability measure with regions
    of space in which a node might lie."  This module turns the weighted
    cell arrangement into that measure: each cell's unnormalized density
    is [exp(weight - top_weight)] (a Gibbs weighting — one violated unit
    of constraint weight costs a factor e), and mass is density times
    area.  From it you get point queries, credible regions at any
    confidence level, and the expected position. *)

type t

val of_solver : Solver.t -> t
(** Build the measure from a solved arrangement.
    @raise Invalid_argument on an empty arrangement. *)

val density_at : t -> Geo.Point.t -> float
(** Unnormalized density of the cell containing the point (0 outside the
    world). *)

val probability_at : t -> Geo.Point.t -> float
(** Probability mass of the cell containing the point. *)

val credible_region : t -> confidence:float -> Geo.Region.t
(** Smallest union of cells (by descending density) whose total mass
    reaches [confidence] in (0, 1]. *)

val mean_point : t -> Geo.Point.t
(** Probability-weighted mean position. *)

val entropy_bits : t -> float
(** Shannon entropy of the cell distribution — a scalar "how uncertain is
    this localization" diagnostic. *)

val cells : t -> (Geo.Region.t * float) list
(** Cells with their probability masses, heaviest first. *)
