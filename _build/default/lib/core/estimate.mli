(** Localization result.

    Octant's output is an {e estimated location region} — possibly
    non-convex and disconnected — plus a point estimate (the weighted
    centroid) for consumers that need a single answer.  The region lives in
    the projected plane; this module carries the projection so callers can
    move between plane and globe, compute the error against ground truth,
    and test region coverage (the Figure 4 metric). *)

type t = {
  projection : Geo.Projection.t;  (** Plane-globe binding for this estimate. *)
  region : Geo.Region.t;          (** Estimated location region (plane). *)
  point : Geo.Geodesy.coord;      (** Point estimate on the globe. *)
  point_plane : Geo.Point.t;
  area_km2 : float;               (** Region area. *)
  top_weight : float;             (** Weight of the heaviest cell used. *)
  cells_used : int;
  constraints_used : int;
  target_height_ms : float;       (** Estimated target queuing height. *)
  solve_time_s : float;           (** Wall-clock of the whole localization. *)
}

val error_km : t -> Geo.Geodesy.coord -> float
(** Great-circle distance from the point estimate to the true position. *)

val error_miles : t -> Geo.Geodesy.coord -> float

val covers : t -> Geo.Geodesy.coord -> bool
(** Is the true position inside the estimated region?  (Figure 4's
    "correctly localized" criterion.) *)

val region_area_sq_miles : t -> float

val bezier_boundaries : t -> Geo.Bezier.path list
(** The region boundary in the paper's compact Bezier form. *)

val pp : Format.formatter -> t -> unit
