(** Queuing-delay heights (paper §2.2).

    RTTs carry an inelastic queuing component that no amount of probing
    removes.  Octant models it as a per-node "height": the minimum queuing
    delay a node adds to every measurement it participates in.  Landmark
    heights come from the overdetermined linear system

    [h_i + h_j = rtt(i,j) - propagation(i,j)]   for all landmark pairs,

    where propagation is derived from the known landmark positions (great
    circle at 2/3 c).  The target's height (plus a coarse position that the
    paper notes is {e not} used downstream) comes from a small nonlinear
    least-squares fit.  Subtracting heights from raw RTTs gives the
    "adjusted" latencies the calibration and constraints consume. *)

type result = {
  heights_ms : float array;      (** One per landmark, clamped non-negative. *)
  inflation_beta : float;        (** Shared distance-proportional excess slope:
                                     the fit is [rtt = (1+beta) prop + h_i + h_j].
                                     Captures mean route inflation so that the
                                     heights stay purely nodal. *)
  residual_ms : float;           (** RMS residual of the linear fit. *)
}

val solve_landmarks :
  positions:Geo.Geodesy.coord array -> rtt_ms:float array array -> result
(** Least-squares landmark heights.  [rtt_ms] is the symmetric min-RTT
    matrix; entries [<= 0] (missing measurements) are skipped.  Uses a tiny
    ridge so nearly-degenerate deployments (e.g. collinear landmarks) still
    solve.
    @raise Invalid_argument when fewer than 3 landmarks. *)

type target_result = {
  height_ms : float;             (** Estimated target height, non-negative. *)
  coarse_position : Geo.Geodesy.coord;  (** Vivaldi-grade estimate; high error, not used downstream. *)
  fit_residual_ms : float;
}

val solve_target :
  ?inflation_beta:float ->
  positions:Geo.Geodesy.coord array ->
  landmark_heights_ms:float array ->
  rtt_to_target_ms:float array ->
  unit ->
  target_result
(** Nelder–Mead fit of (target height, lat, lon) minimizing the residue of
    [h_L + h_t + propagation(L, t) = rtt(L, t)] over all landmarks. *)

val adjusted_rtt : landmark_height_ms:float -> target_height_ms:float -> float -> float
(** [adjusted_rtt ~landmark_height_ms ~target_height_ms rtt] subtracts both
    heights, clamped so that at least 20% of the raw RTT survives —
    over-subtraction from height estimation error must not fabricate
    near-zero latencies. *)
