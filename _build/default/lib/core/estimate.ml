type t = {
  projection : Geo.Projection.t;
  region : Geo.Region.t;
  point : Geo.Geodesy.coord;
  point_plane : Geo.Point.t;
  area_km2 : float;
  top_weight : float;
  cells_used : int;
  constraints_used : int;
  target_height_ms : float;
  solve_time_s : float;
}

let error_km t truth = Geo.Geodesy.distance_km t.point truth
let error_miles t truth = Geo.Geodesy.miles_of_km (error_km t truth)

let covers t truth = Geo.Region.contains t.region (Geo.Projection.project t.projection truth)

let region_area_sq_miles t =
  t.area_km2 /. (Geo.Geodesy.km_per_mile *. Geo.Geodesy.km_per_mile)

let bezier_boundaries t = Geo.Region.to_bezier_paths (Geo.Region.simplify t.region)

let pp fmt t =
  Format.fprintf fmt
    "estimate{point=%a area=%.0fkm2 cells=%d constraints=%d height=%.2fms %.2fs}"
    Geo.Geodesy.pp t.point t.area_km2 t.cells_used t.constraints_used t.target_height_ms
    t.solve_time_s
