type policy = { tau_ms : float; floor : float; scale : float }

let default = { tau_ms = 35.0; floor = 0.02; scale = 1.0 }

let of_latency p rtt_ms =
  if rtt_ms < 0.0 then invalid_arg "Weight.of_latency: negative latency";
  Float.max p.floor (p.scale *. exp (-.rtt_ms /. p.tau_ms))

let uniform = { tau_ms = infinity; floor = 1.0; scale = 1.0 }
