type result = {
  point : Geo.Geodesy.coord;
  residual_rtt_ms : float;
  hops_from_target : int;
}

let localize ~undns ~traceroutes ~target_rtt_ms =
  (* GeoTrack is a single-vantage technique: one traceroute to the target,
     last recognizable router wins.  We use the first vantage point with a
     usable measurement, like the original tool driven from one probe
     machine. *)
  let result = ref None in
  (try
     Array.iteri
       (fun lm_index trace ->
         let target_rtt =
           if lm_index < Array.length target_rtt_ms then target_rtt_ms.(lm_index) else 0.0
         in
         if target_rtt > 0.0 && Array.length trace >= 2 then begin
           let n = Array.length trace in
           let rec scan k hops_back =
             if k < 0 then ()
             else
               let hop = trace.(k) in
               match Option.bind hop.Octant.Pipeline.hop_dns undns with
               | Some coord ->
                   let residual = Float.max 0.0 (target_rtt -. hop.Octant.Pipeline.hop_rtt_ms) in
                   result := Some (coord, residual, hops_back)
               | None -> scan (k - 1) (hops_back + 1)
           in
           (* Skip the final entry (the target host itself). *)
           scan (n - 2) 1;
           raise Exit
         end)
       traceroutes
   with Exit -> ());
  Option.map
    (fun (point, residual_rtt_ms, hops_from_target) -> { point; residual_rtt_ms; hops_from_target })
    !result
