(** GeoLim — Constraint-Based Geolocation (Gueye, Ziviani, Crovella, Fdida,
    IMC 2004), the paper's strongest prior-work comparison.

    Each landmark learns a linear "bestline" mapping delay to an upper
    distance bound: the line lying {e below} every (distance, delay)
    sample — the tightest linear bound consistent with all observations —
    never faster than light.  A target measured at RTT [r] from landmark
    [L] must then be inside the disk of radius [bestline_L^-1](r).  The
    estimated region is the intersection of all disks; the point estimate
    is its centroid.

    Two properties matter for reproducing the paper's Figures 3–4:
    GeoLim uses only positive constraints and a pure intersection, so one
    over-aggressive bestline (a landmark whose sample set happened to
    include a fast long-distance path) can make the intersection miss the
    target — and the probability of that grows with the number of
    landmarks.  When the intersection is empty we progressively relax all
    radii to produce a point estimate, but coverage (Figure 4) is assessed
    against the unrelaxed intersection, as in the original system. *)

type t

val prepare :
  landmarks:Octant.Pipeline.landmark array ->
  inter_landmark_rtt_ms:float array array ->
  unit ->
  t
(** Fit one bestline per landmark from the inter-landmark measurements. *)

type result = {
  point : Geo.Geodesy.coord;       (** Centroid of the (possibly relaxed) intersection. *)
  covers_truth : Geo.Geodesy.coord -> bool;
      (** Membership in the {e unrelaxed} intersection region. *)
  area_km2 : float;                (** Area of the unrelaxed region (0 if empty). *)
  relaxations : int;               (** Radius-scaling rounds needed for a point (0 = none). *)
}

val localize : t -> target_rtt_ms:float array -> result
(** @raise Invalid_argument on length mismatch or fewer than 3 usable RTTs. *)

val bestline : t -> int -> float * float
(** (slope ms/km, intercept ms) of a landmark's bestline — for tests. *)

val distance_bound_km : t -> int -> float -> float
(** Distance bound implied by a given RTT at a given landmark. *)
