type config = { dimensions : int; iterations : int; timestep : float }

let default_config = { dimensions = 2; iterations = 60; timestep = 0.25 }

type t = {
  config : config;
  landmarks : Octant.Pipeline.landmark array;
  projection : Geo.Projection.t;
  coords : float array array; (* per landmark: [x_km; y_km] *)
  heights : float array;      (* per landmark, ms *)
  rtt : float array array;
}

(* Predicted RTT between two embedded nodes: coordinate distance converted
   at 2/3 c plus both heights (the Vivaldi height model). *)
let predict_pair coords_a height_a coords_b height_b =
  let acc = ref 0.0 in
  Array.iteri (fun k va -> let d = va -. coords_b.(k) in acc := !acc +. (d *. d)) coords_a;
  Geo.Geodesy.distance_to_min_rtt_ms (sqrt !acc) +. height_a +. height_b

let embed ?(config = default_config) ~landmarks ~inter_landmark_rtt_ms () =
  let n = Array.length landmarks in
  if n < 3 then invalid_arg "Vivaldi.embed: need at least 3 landmarks";
  if config.dimensions <> 2 then invalid_arg "Vivaldi.embed: only 2 dimensions supported";
  (* Project around the landmark centroid. *)
  let lat = ref 0.0 and lon = ref 0.0 in
  Array.iter
    (fun l ->
      lat := !lat +. l.Octant.Pipeline.lm_position.Geo.Geodesy.lat;
      lon := !lon +. l.Octant.Pipeline.lm_position.Geo.Geodesy.lon)
    landmarks;
  let focus = Geo.Geodesy.coord ~lat:(!lat /. float_of_int n) ~lon:(!lon /. float_of_int n) in
  let projection = Geo.Projection.make focus in
  (* Anchored initialization: true projected positions, zero heights. *)
  let coords =
    Array.map
      (fun l ->
        let p = Geo.Projection.project projection l.Octant.Pipeline.lm_position in
        [| p.Geo.Point.x; p.Geo.Point.y |])
      landmarks
  in
  let heights = Array.make n 0.5 in
  (* Spring relaxation with a decaying timestep; positions stay anchored
     (we only relax heights for anchored landmarks) — this is the
     idealized, ground-truth-assisted variant described in the mli. *)
  for round = 0 to config.iterations - 1 do
    let dt = config.timestep /. (1.0 +. (float_of_int round /. 8.0)) in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j && inter_landmark_rtt_ms.(i).(j) > 0.0 then begin
          let predicted = predict_pair coords.(i) heights.(i) coords.(j) heights.(j) in
          let error = inter_landmark_rtt_ms.(i).(j) -. predicted in
          (* Positive error: RTT larger than predicted -> grow heights. *)
          heights.(i) <- Float.max 0.0 (heights.(i) +. (dt *. error /. 2.0))
        end
      done
    done
  done;
  { config; landmarks; projection; coords; heights; rtt = inter_landmark_rtt_ms }

let prediction_error_ms t =
  let n = Array.length t.landmarks in
  let acc = ref 0.0 and count = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if t.rtt.(i).(j) > 0.0 then begin
        let p = predict_pair t.coords.(i) t.heights.(i) t.coords.(j) t.heights.(j) in
        let e = p -. t.rtt.(i).(j) in
        acc := !acc +. (e *. e);
        incr count
      end
    done
  done;
  if !count = 0 then 0.0 else sqrt (!acc /. float_of_int !count)

type result = { point : Geo.Geodesy.coord; height_ms : float; fit_error_ms : float }

let localize t ~target_rtt_ms =
  let n = Array.length t.landmarks in
  if Array.length target_rtt_ms <> n then invalid_arg "Vivaldi.localize: length mismatch";
  let usable = ref 0 in
  Array.iter (fun rtt -> if rtt > 0.0 then incr usable) target_rtt_ms;
  if !usable < 3 then invalid_arg "Vivaldi.localize: need at least 3 RTTs";
  (* Embed the target by direct stress minimization over (x, y, h). *)
  let objective v =
    let pos = [| v.(0); v.(1) |] and h = Float.max 0.0 v.(2) in
    let penalty = if v.(2) < 0.0 then 100.0 *. v.(2) *. v.(2) else 0.0 in
    let acc = ref penalty in
    Array.iteri
      (fun i rtt ->
        if rtt > 0.0 then begin
          let predicted = predict_pair pos h t.coords.(i) t.heights.(i) in
          let e = predicted -. rtt in
          acc := !acc +. (e *. e)
        end)
      target_rtt_ms;
    !acc
  in
  let r =
    Linalg.Nelder_mead.minimize_multistart ~step:200.0 ~max_iter:3000 ~restarts:4
      ~perturb:(fun k ->
        let angle = Float.pi *. float_of_int k /. 2.0 in
        [| 1200.0 *. cos angle; 1200.0 *. sin angle; 0.5 *. float_of_int k |])
      ~f:objective ~init:[| 0.0; 0.0; 1.0 |] ()
  in
  let x = r.Linalg.Nelder_mead.x in
  {
    point = Geo.Projection.unproject t.projection (Geo.Point.make x.(0) x.(1));
    height_ms = Float.max 0.0 x.(2);
    fit_error_ms = sqrt (r.Linalg.Nelder_mead.fx /. float_of_int !usable);
  }
