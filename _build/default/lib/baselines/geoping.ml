type t = {
  landmarks : Octant.Pipeline.landmark array;
  signatures : float array array; (* row i = landmark i's RTT vector *)
}

let prepare ~landmarks ~inter_landmark_rtt_ms () =
  let n = Array.length landmarks in
  if n < 2 then invalid_arg "Geoping.prepare: need at least 2 landmarks";
  if Array.length inter_landmark_rtt_ms <> n then invalid_arg "Geoping.prepare: matrix mismatch";
  { landmarks; signatures = inter_landmark_rtt_ms }

type result = { point : Geo.Geodesy.coord; matched_landmark : int; score : float }

(* Normalized L2 over coordinates measured by both vectors; coordinate k
   is skipped for candidate i when k = i (a landmark has no RTT to
   itself). *)
let signature_distance candidate_index sig_a sig_b =
  let acc = ref 0.0 and count = ref 0 in
  Array.iteri
    (fun k a ->
      if k <> candidate_index then begin
        let b = sig_b.(k) in
        if a > 0.0 && b > 0.0 then begin
          let d = a -. b in
          acc := !acc +. (d *. d);
          incr count
        end
      end)
    sig_a;
  if !count = 0 then infinity else sqrt (!acc /. float_of_int !count)

let localize t ~target_rtt_ms =
  let n = Array.length t.landmarks in
  if Array.length target_rtt_ms <> n then invalid_arg "Geoping.localize: length mismatch";
  let best = ref (-1) and best_score = ref infinity in
  for i = 0 to n - 1 do
    let score = signature_distance i t.signatures.(i) target_rtt_ms in
    if score < !best_score then begin
      best := i;
      best_score := score
    end
  done;
  if !best < 0 then invalid_arg "Geoping.localize: no usable signature coordinates";
  {
    point = t.landmarks.(!best).Octant.Pipeline.lm_position;
    matched_landmark = !best;
    score = !best_score;
  }
