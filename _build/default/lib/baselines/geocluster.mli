(** GeoCluster (Padmanabhan & Subramanian, SIGCOMM 2001) — and in the same
    family, NetGeo and IP2LL (paper §4).

    Database techniques: break the address space into clusters that are
    likely co-located and assign each cluster a location from IP-to-ZIP /
    WHOIS-style registries.  No measurements at all — which is both the
    appeal (zero probing cost) and the failure mode the paper calls out:
    "the granularity of such a scheme is very coarse for large IP address
    blocks that contain geographically diverse nodes", and registration
    records are routinely stale.

    Our simulator's WHOIS registry carries exactly that error model, so
    this baseline quantifies what pure-database geolocalization achieves
    on the same deployment. *)

type result = {
  point : Geo.Geodesy.coord;
  from_registry : bool;  (** False when the registry had no record and the
                             estimate fell back to the nearest exchange
                             city (the "provider NOC" default). *)
}

val localize :
  whois:(int -> Geo.Geodesy.coord option) ->
  fallback:Geo.Geodesy.coord ->
  target_key:int ->
  result
(** [localize ~whois ~fallback ~target_key] returns the registry location
    when one exists, the fallback otherwise. *)
