lib/baselines/geotrack.ml: Array Float Geo Octant Option
