lib/baselines/geoping.ml: Array Geo Octant
