lib/baselines/geolim.mli: Geo Octant
