lib/baselines/geolim.ml: Array Float Geo List Octant
