lib/baselines/vivaldi.ml: Array Float Geo Linalg Octant
