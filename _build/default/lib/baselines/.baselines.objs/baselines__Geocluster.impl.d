lib/baselines/geocluster.ml: Geo
