lib/baselines/geocluster.mli: Geo
