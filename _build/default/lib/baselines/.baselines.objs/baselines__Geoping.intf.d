lib/baselines/geoping.mli: Geo Octant
