lib/baselines/geotrack.mli: Geo Octant
