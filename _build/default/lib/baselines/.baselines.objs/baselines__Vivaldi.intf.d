lib/baselines/vivaldi.mli: Geo Octant
