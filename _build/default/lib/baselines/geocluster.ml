type result = { point : Geo.Geodesy.coord; from_registry : bool }

let localize ~whois ~fallback ~target_key =
  match whois target_key with
  | Some coord -> { point = coord; from_registry = true }
  | None -> { point = fallback; from_registry = false }
