(** GeoPing (Padmanabhan & Subramanian, SIGCOMM 2001).

    Maps the target to the landmark with the most similar {e delay
    signature}: the vector of RTTs to the common set of vantage points.
    The estimate is that landmark's own position, so accuracy is bounded
    below by the distance to the nearest landmark — the reason the paper's
    Figure 3 shows GeoPing's long tail. *)

type t

val prepare :
  landmarks:Octant.Pipeline.landmark array ->
  inter_landmark_rtt_ms:float array array ->
  unit ->
  t

type result = {
  point : Geo.Geodesy.coord;  (** Position of the best-matching landmark. *)
  matched_landmark : int;     (** Its index. *)
  score : float;              (** Signature distance (lower = closer match). *)
}

val localize : t -> target_rtt_ms:float array -> result
(** Nearest landmark in signature space (normalized L2 over the RTT
    vectors, restricted to coordinates both sides measured).
    @raise Invalid_argument on length mismatch or no usable coordinates. *)
