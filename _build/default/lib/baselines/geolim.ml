type t = {
  landmarks : Octant.Pipeline.landmark array;
  bestlines : (float * float) array; (* slope ms/km, intercept ms *)
}

(* Slope of the hard physical limit: ms of RTT per km of distance. *)
let sol_slope = 2.0 /. Geo.Geodesy.c_fiber_km_per_ms

(* CBG bestline: the line y = m x + b lying below all (distance, delay)
   points, with slope no smaller than the speed-of-light slope, minimizing
   the total vertical distance to the cloud.  The optimum is supported by
   points of the lower-left convex hull, so searching candidate lines
   through hull point pairs (plus sol-slope lines through each hull point)
   is exact. *)
let fit_bestline samples =
  match samples with
  | [] -> (sol_slope, 0.0)
  | _ ->
      let pts = Array.of_list (List.map (fun (d, rtt) -> Geo.Point.make d rtt) samples) in
      let hull = Geo.Convex_hull.lower_chain pts in
      let candidates = ref [] in
      let n = Array.length hull in
      for i = 0 to n - 1 do
        (* Speed-of-light slope through this support point. *)
        let p = hull.(i) in
        candidates := (sol_slope, p.Geo.Point.y -. (sol_slope *. p.Geo.Point.x)) :: !candidates;
        for j = i + 1 to n - 1 do
          let q = hull.(j) in
          if q.Geo.Point.x -. p.Geo.Point.x > 1e-9 then begin
            let m = (q.Geo.Point.y -. p.Geo.Point.y) /. (q.Geo.Point.x -. p.Geo.Point.x) in
            if m >= sol_slope then
              candidates := (m, p.Geo.Point.y -. (m *. p.Geo.Point.x)) :: !candidates
          end
        done
      done;
      let feasible (m, b) =
        Array.for_all (fun p -> p.Geo.Point.y >= (m *. p.Geo.Point.x) +. b -. 1e-9) pts
        && b >= 0.0
      in
      let cost (m, b) =
        Array.fold_left (fun acc p -> acc +. (p.Geo.Point.y -. (m *. p.Geo.Point.x) -. b)) 0.0 pts
      in
      let best = ref (sol_slope, 0.0) and best_cost = ref (cost (sol_slope, 0.0)) in
      List.iter
        (fun cand ->
          if feasible cand then begin
            let c = cost cand in
            if c < !best_cost then begin
              best := cand;
              best_cost := c
            end
          end)
        !candidates;
      !best

let prepare ~landmarks ~inter_landmark_rtt_ms () =
  let n = Array.length landmarks in
  if n < 3 then invalid_arg "Geolim.prepare: need at least 3 landmarks";
  let bestlines =
    Array.init n (fun i ->
        let samples = ref [] in
        for j = 0 to n - 1 do
          if j <> i && inter_landmark_rtt_ms.(i).(j) > 0.0 then
            samples :=
              ( Geo.Geodesy.distance_km landmarks.(i).Octant.Pipeline.lm_position
                  landmarks.(j).Octant.Pipeline.lm_position,
                inter_landmark_rtt_ms.(i).(j) )
              :: !samples
        done;
        fit_bestline !samples)
  in
  { landmarks; bestlines }

let bestline t i = t.bestlines.(i)

let distance_bound_km t i rtt =
  let m, b = t.bestlines.(i) in
  let d = (rtt -. b) /. m in
  Float.max 5.0 d

type result = {
  point : Geo.Geodesy.coord;
  covers_truth : Geo.Geodesy.coord -> bool;
  area_km2 : float;
  relaxations : int;
}

let localize t ~target_rtt_ms =
  let n = Array.length t.landmarks in
  if Array.length target_rtt_ms <> n then invalid_arg "Geolim.localize: length mismatch";
  let usable = ref [] in
  Array.iteri (fun i rtt -> if rtt > 0.0 then usable := (i, rtt) :: !usable) target_rtt_ms;
  if List.length !usable < 3 then invalid_arg "Geolim.localize: need at least 3 RTTs";
  let usable = Array.of_list (List.rev !usable) in
  (* Project around the strongest (lowest-RTT) landmark. *)
  let focus_i, _ =
    Array.fold_left
      (fun ((_, best_rtt) as best) (i, rtt) -> if rtt < best_rtt then (i, rtt) else best)
      usable.(0) usable
  in
  let projection = Geo.Projection.make t.landmarks.(focus_i).Octant.Pipeline.lm_position in
  let intersection scale =
    let disks =
      Array.to_list usable
      |> List.map (fun (i, rtt) ->
             let center =
               Geo.Projection.project projection t.landmarks.(i).Octant.Pipeline.lm_position
             in
             let radius = scale *. distance_bound_km t i rtt in
             Geo.Region.disk ~segments:48 ~center ~radius ())
    in
    Geo.Region.inter_all disks
  in
  let raw = intersection 1.0 in
  let rec relax scale rounds =
    if rounds > 24 then (Geo.Region.disk ~segments:48 ~center:Geo.Point.zero ~radius:50.0 (), rounds)
    else
      let r = intersection scale in
      if Geo.Region.is_empty r then relax (scale *. 1.15) (rounds + 1) else (r, rounds)
  in
  let region_for_point, relaxations =
    if Geo.Region.is_empty raw then relax 1.15 1 else (raw, 0)
  in
  let point = Geo.Projection.unproject projection (Geo.Region.centroid region_for_point) in
  {
    point;
    covers_truth =
      (fun truth ->
        (not (Geo.Region.is_empty raw))
        && Geo.Region.contains raw (Geo.Projection.project projection truth));
    area_km2 = Geo.Region.area raw;
    relaxations;
  }
