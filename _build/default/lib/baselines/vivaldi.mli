(** Vivaldi network coordinates (Dabek, Cox, Kaashoek, Morris — SIGCOMM
    2004), the system Octant's height mechanism is derived from (paper
    §2.2).

    Vivaldi embeds hosts in a low-dimensional space plus a non-Euclidean
    "height" so that coordinate distance predicts RTT.  It is {e not} a
    geolocalization system — its coordinates live in an abstract space —
    but it makes an instructive extra baseline: we anchor the embedding to
    the landmarks' true positions (a best case Vivaldi itself cannot
    achieve) and read the target's embedded position as its location
    estimate.  The gap between even this idealized variant and Octant
    quantifies what constraint-based solving buys over embeddings. *)

type config = {
  dimensions : int;        (** Euclidean dimensions (we use 2: the plane). *)
  iterations : int;        (** Relaxation rounds over all pairs. *)
  timestep : float;        (** Initial adaptive timestep (delta). *)
}

val default_config : config

type t

val embed :
  ?config:config ->
  landmarks:Octant.Pipeline.landmark array ->
  inter_landmark_rtt_ms:float array array ->
  unit ->
  t
(** Embed the landmarks.  Coordinates are anchored at the landmarks' true
    projected positions and refined by spring relaxation on the RTT
    matrix; per-node heights absorb the inelastic RTT component. *)

type result = {
  point : Geo.Geodesy.coord;  (** Embedded target position, unprojected. *)
  height_ms : float;          (** Target height in the embedding. *)
  fit_error_ms : float;       (** RMS RTT prediction error for the target. *)
}

val localize : t -> target_rtt_ms:float array -> result
(** Place the target by minimizing the embedding stress of its RTT
    vector.
    @raise Invalid_argument on length mismatch or fewer than 3 RTTs. *)

val prediction_error_ms : t -> float
(** RMS error of RTT predictions across landmark pairs — the embedding
    quality metric from the Vivaldi paper. *)
