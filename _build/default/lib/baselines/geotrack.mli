(** GeoTrack (Padmanabhan & Subramanian, SIGCOMM 2001).

    Traceroutes towards the target from one vantage point, decodes router
    DNS names, and places the target at the {e last} router on the path
    whose location is recognizable.  Accuracy is limited by the distance
    between the target and its last recognizable router — often an
    upstream PoP in a different city, hence the paper's 2709-mile worst
    case. *)

type result = {
  point : Geo.Geodesy.coord;   (** Location of the chosen router. *)
  residual_rtt_ms : float;     (** RTT gap between that router and the target. *)
  hops_from_target : int;      (** How many hops upstream the anchor was. *)
}

val localize :
  undns:(string -> Geo.Geodesy.coord option) ->
  traceroutes:Octant.Pipeline.hop array array ->
  target_rtt_ms:float array ->
  result option
(** [None] when no router on any path resolves. *)
