(** Azimuthal equidistant projection.

    Octant's region algebra is planar; a projection ties the plane to the
    globe.  The azimuthal equidistant projection preserves distance and
    bearing *from the focus point*, so constraint disks centered near the
    focus keep their radii almost exactly, and distortion grows slowly with
    distance from the focus.  The solver picks the focus as the mean landmark
    position, which is also where the solution region lives. *)

type t
(** A projection with a fixed focus. *)

val make : Geodesy.coord -> t
(** Projection focused at the given coordinate. *)

val focus : t -> Geodesy.coord

val project : t -> Geodesy.coord -> Point.t
(** Globe to plane, kilometers. *)

val unproject : t -> Point.t -> Geodesy.coord
(** Plane back to globe; inverse of {!project} up to floating error. *)

val project_many : t -> Geodesy.coord array -> Point.t array
val unproject_many : t -> Point.t array -> Geodesy.coord array

val distance_distortion : t -> Geodesy.coord -> Geodesy.coord -> float
(** Ratio of planar to great-circle distance between two points — a
    diagnostics hook used by tests to bound projection error over the
    deployment area. *)
