(** Planar convex hulls (Andrew's monotone chain).

    Octant's calibration step (paper §2.1, Figure 2) computes the convex hull
    of each landmark's (latency, distance) scatter; the upper and lower hull
    facets become the aggressive distance bounds [R_L] and [r_L]. *)

val hull : Point.t array -> Point.t array
(** Convex hull in counterclockwise order, starting from the lexicographically
    smallest point.  Collinear points on the hull boundary are dropped.
    Returns the input (deduplicated) when fewer than 3 distinct points.
    Does not mutate the input. *)

val upper_chain : Point.t array -> Point.t array
(** The upper facets of the hull, sorted by increasing x: the polyline from
    the leftmost to the rightmost point that bounds the set from above.
    Always has at least one point when the input is non-empty. *)

val lower_chain : Point.t array -> Point.t array
(** Lower facets, sorted by increasing x. *)

val eval_chain : Point.t array -> float -> float
(** [eval_chain chain x] interpolates the piecewise-linear chain at [x].
    Outside the x-range of the chain, extends with the endpoint value
    (clamped).  Requires a non-empty chain sorted by x. *)

val contains : Point.t array -> Point.t -> bool
(** Point-in-convex-hull test (hull in CCW order, boundary counts inside). *)
