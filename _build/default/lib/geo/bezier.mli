(** Cubic Bezier curves and closed Bezier paths.

    Octant represents candidate-location regions as areas bounded by Bezier
    curves (paper §2): the representation is compact, admits non-convex and
    disconnected areas, and constraint disks can be built exactly by
    transforming the control points of a template circle.  This module
    provides the segment and closed-path types, exact area via Green's
    theorem, adaptive flattening (for the boolean-operation layer, which
    clips polygons), and fitting of smooth paths back onto polygon
    boundaries (for compact output). *)

type segment = {
  p0 : Point.t;  (** start point *)
  p1 : Point.t;  (** first control point *)
  p2 : Point.t;  (** second control point *)
  p3 : Point.t;  (** end point *)
}

val line : Point.t -> Point.t -> segment
(** Straight segment encoded as a cubic (control points at thirds). *)

val eval : segment -> float -> Point.t
(** De Casteljau evaluation at [t] in [0, 1]. *)

val derivative : segment -> float -> Point.t
(** Velocity vector at [t]. *)

val split : segment -> float -> segment * segment
(** Subdivide at parameter [t]. *)

val flatness : segment -> float
(** Max distance of the control points from the chord — an upper bound on
    the deviation of the curve from the straight line [p0 p3]. *)

val flatten : ?tolerance:float -> segment -> Point.t list
(** Polyline approximation within [tolerance] (default 1e-3 km = 1 m),
    including the start point, excluding the end point. *)

val arc_length : ?tolerance:float -> segment -> float

val transform : (Point.t -> Point.t) -> segment -> segment
(** Map all four control points; exact for affine maps — this is the
    "operations via transformations only on the endpoints of Bezier
    segments" of the paper. *)

val reverse : segment -> segment

(** {1 Closed paths} *)

type path = segment list
(** A closed path: each segment's [p3] must equal the next segment's [p0]
    and the last closes onto the first. *)

val is_closed : ?eps:float -> path -> bool

val circle : center:Point.t -> radius:float -> path
(** Four-arc cubic approximation of a circle (max radial error 2.7e-4 r). *)

val of_polygon : Polygon.t -> path
(** Each polygon edge becomes a straight cubic segment. *)

val to_polygon : ?tolerance:float -> path -> Polygon.t
(** Flatten a closed path to a polygon.
    @raise Invalid_argument if the flattened path has fewer than 3 distinct
    vertices. *)

val fit_smooth : Polygon.t -> path
(** Smooth closed Catmull–Rom interpolation of the polygon's vertices,
    converted to cubic Bezier segments.  The path passes through every
    vertex; this is the compact form Octant reports regions in. *)

val area : path -> float
(** Signed enclosed area of a closed path, exact for cubics (Green's
    theorem); positive when counterclockwise. *)

val transform_path : (Point.t -> Point.t) -> path -> path

val segment_count : path -> int

val pp_segment : Format.formatter -> segment -> unit
