type coord = { lat : float; lon : float }

let earth_radius_km = 6371.0088
let km_per_mile = 1.609344
let miles_of_km km = km /. km_per_mile
let km_of_miles mi = mi *. km_per_mile

let deg_to_rad d = d *. Float.pi /. 180.0
let rad_to_deg r = r *. 180.0 /. Float.pi

let normalize_lon lon =
  (* Into [-180, 180). *)
  let l = Float.rem (lon +. 180.0) 360.0 in
  let l = if l < 0.0 then l +. 360.0 else l in
  l -. 180.0

let coord ~lat ~lon =
  if not (Float.is_finite lat && Float.is_finite lon) then
    invalid_arg "Geodesy.coord: non-finite coordinate";
  let lat = Float.max (-90.0) (Float.min 90.0 lat) in
  { lat; lon = normalize_lon lon }

let distance_km a b =
  let phi1 = deg_to_rad a.lat and phi2 = deg_to_rad b.lat in
  let dphi = deg_to_rad (b.lat -. a.lat) in
  let dlam = deg_to_rad (b.lon -. a.lon) in
  let sin_dphi = sin (dphi /. 2.0) and sin_dlam = sin (dlam /. 2.0) in
  let h = (sin_dphi *. sin_dphi) +. (cos phi1 *. cos phi2 *. sin_dlam *. sin_dlam) in
  let h = Float.min 1.0 h in
  2.0 *. earth_radius_km *. asin (sqrt h)

let distance_miles a b = miles_of_km (distance_km a b)

let initial_bearing a b =
  let phi1 = deg_to_rad a.lat and phi2 = deg_to_rad b.lat in
  let dlam = deg_to_rad (b.lon -. a.lon) in
  let y = sin dlam *. cos phi2 in
  let x = (cos phi1 *. sin phi2) -. (sin phi1 *. cos phi2 *. cos dlam) in
  let theta = atan2 y x in
  let theta = if theta < 0.0 then theta +. (2.0 *. Float.pi) else theta in
  if theta >= 2.0 *. Float.pi then 0.0 else theta

let destination a ~bearing ~distance_km:d =
  let delta = d /. earth_radius_km in
  let phi1 = deg_to_rad a.lat in
  let lam1 = deg_to_rad a.lon in
  let sin_phi2 = (sin phi1 *. cos delta) +. (cos phi1 *. sin delta *. cos bearing) in
  let sin_phi2 = Float.max (-1.0) (Float.min 1.0 sin_phi2) in
  let phi2 = asin sin_phi2 in
  let y = sin bearing *. sin delta *. cos phi1 in
  let x = cos delta -. (sin phi1 *. sin_phi2) in
  let lam2 = lam1 +. atan2 y x in
  coord ~lat:(rad_to_deg phi2) ~lon:(rad_to_deg lam2)

let midpoint a b =
  let d = distance_km a b in
  if d = 0.0 then a else destination a ~bearing:(initial_bearing a b) ~distance_km:(d /. 2.0)

let equal ?(eps = 1e-9) a b =
  Float.abs (a.lat -. b.lat) <= eps
  && Float.abs (normalize_lon (a.lon -. b.lon)) <= eps

let pp fmt c = Format.fprintf fmt "(%.4f, %.4f)" c.lat c.lon

(* 2/3 of c = 199,861.6 km/s ~= 199.86 km/ms. *)
let c_fiber_km_per_ms = 2.0 /. 3.0 *. 299792.458 /. 1000.0

let rtt_to_max_distance_km rtt_ms =
  if rtt_ms < 0.0 then invalid_arg "Geodesy.rtt_to_max_distance_km: negative RTT";
  rtt_ms /. 2.0 *. c_fiber_km_per_ms

let distance_to_min_rtt_ms d_km =
  if d_km < 0.0 then invalid_arg "Geodesy.distance_to_min_rtt_ms: negative distance";
  2.0 *. d_km /. c_fiber_km_per_ms
