(** Points and vectors of the projected plane.

    All planar geometry in this repository runs in a local azimuthal
    equidistant projection (see {!Projection}) whose unit is the kilometer,
    so a [Point.t] is "kilometers east, kilometers north of the projection
    focus". *)

type t = { x : float; y : float }

val make : float -> float -> t
val zero : t

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val neg : t -> t

val dot : t -> t -> float
val cross : t -> t -> float
(** z-component of the 3D cross product; positive when the second vector is
    counterclockwise of the first. *)

val norm : t -> float
val norm2 : t -> float
(** Squared norm (avoids the sqrt when comparing lengths). *)

val dist : t -> t -> float
val dist2 : t -> t -> float

val lerp : t -> t -> float -> t
(** [lerp a b t] is [a + t (b - a)]. *)

val midpoint : t -> t -> t

val rotate : t -> float -> t
(** [rotate p theta] rotates [p] around the origin by [theta] radians
    counterclockwise. *)

val rotate_around : center:t -> t -> float -> t

val normalize : t -> t
(** Unit vector in the same direction.  Requires non-zero norm. *)

val perp : t -> t
(** Counterclockwise perpendicular: [(x, y) -> (-y, x)]. *)

val equal : ?eps:float -> t -> t -> bool
(** Componentwise comparison with tolerance (default 1e-9). *)

val orient2d : t -> t -> t -> float
(** Signed doubled area of the triangle (a, b, c); positive when the triple
    turns counterclockwise.  The workhorse predicate for hulls and clipping. *)

val compare : t -> t -> int
(** Lexicographic (x, then y); total order for sorting and dedup. *)

val pp : Format.formatter -> t -> unit
