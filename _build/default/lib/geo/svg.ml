type t = {
  lo : Point.t;
  hi : Point.t;
  width_px : int;
  height_px : int;
  scale : float; (* px per km *)
  buffer : Buffer.t;
}

let create ?(width_px = 900) ~lo ~hi () =
  let dx = hi.Point.x -. lo.Point.x and dy = hi.Point.y -. lo.Point.y in
  if dx <= 0.0 || dy <= 0.0 then invalid_arg "Svg.create: degenerate box";
  let scale = float_of_int width_px /. dx in
  let height_px = int_of_float (Float.ceil (dy *. scale)) in
  { lo; hi; width_px; height_px; scale; buffer = Buffer.create 4096 }

(* Plane km -> pixel coordinates, with the y axis flipped so north is up. *)
let px t p =
  let x = (p.Point.x -. t.lo.Point.x) *. t.scale in
  let y = (t.hi.Point.y -. p.Point.y) *. t.scale in
  (x, y)

let emit t fmt = Printf.ksprintf (fun s -> Buffer.add_string t.buffer s) fmt

let polygon_points t poly =
  Polygon.vertices poly |> Array.to_list
  |> List.map (fun p ->
         let x, y = px t p in
         Printf.sprintf "%.1f,%.1f" x y)
  |> String.concat " "

let add_region ?(fill = "#4682b4") ?(stroke = "#1f4e79") ?(opacity = 0.35) ?label t region =
  (match label with Some l -> emit t "<!-- region: %s -->\n" l | None -> ());
  List.iter
    (fun poly ->
      emit t "<polygon points=\"%s\" fill=\"%s\" fill-opacity=\"%.2f\" stroke=\"%s\" stroke-width=\"1\"/>\n"
        (polygon_points t poly) fill opacity stroke)
    (Region.pieces region)

let add_bezier_paths ?(stroke = "#c03030") ?(stroke_width = 1.5) t paths =
  List.iter
    (fun path ->
      match path with
      | [] -> ()
      | first :: _ ->
          let buf = Buffer.create 256 in
          let x0, y0 = px t first.Bezier.p0 in
          Buffer.add_string buf (Printf.sprintf "M %.1f %.1f " x0 y0);
          List.iter
            (fun seg ->
              let x1, y1 = px t seg.Bezier.p1 in
              let x2, y2 = px t seg.Bezier.p2 in
              let x3, y3 = px t seg.Bezier.p3 in
              Buffer.add_string buf
                (Printf.sprintf "C %.1f %.1f, %.1f %.1f, %.1f %.1f " x1 y1 x2 y2 x3 y3))
            path;
          Buffer.add_string buf "Z";
          emit t "<path d=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"%.1f\"/>\n"
            (Buffer.contents buf) stroke stroke_width)
    paths

let add_point ?(color = "#202020") ?(radius_px = 4.0) ?label t p =
  let x, y = px t p in
  emit t "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"%.1f\" fill=\"%s\"/>\n" x y radius_px color;
  match label with
  | Some l ->
      emit t "<text x=\"%.1f\" y=\"%.1f\" font-size=\"11\" font-family=\"sans-serif\">%s</text>\n"
        (x +. 6.0) (y -. 4.0) l
  | None -> ()

let add_circle ?(stroke = "#808080") t ~center ~radius_km =
  let x, y = px t center in
  emit t "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"%.1f\" fill=\"none\" stroke=\"%s\" stroke-dasharray=\"4 3\"/>\n"
    x y (radius_km *. t.scale) stroke

let to_string t =
  Printf.sprintf
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\">\n\
     <rect width=\"%d\" height=\"%d\" fill=\"#fbfbf8\"/>\n%s</svg>\n"
    t.width_px t.height_px t.width_px t.height_px t.width_px t.height_px
    (Buffer.contents t.buffer)

let save t path =
  let oc = open_out path in
  (try output_string oc (to_string t) with e -> close_out oc; raise e);
  close_out oc
