(** Coarse continental outlines.

    Octant folds geographic side information into the constraint system
    (paper §2.5): oceans are negative constraints — no Internet host floats
    in the mid-Atlantic.  This module embeds deliberately *generous* coarse
    outlines of the continents (plus the islands that host PlanetLab-class
    sites: Great Britain, Ireland, Japan, Taiwan, New Zealand, Iceland), so
    that every real land host is inside the mask while most open ocean is
    excluded.  Inland seas of the coarse outlines (e.g. the Baltic) count as
    land; the mask errs towards soundness, never precision. *)

val continents : (string * Geodesy.coord array) list
(** Named outline polygons, vertices in order (lat/lon degrees). *)

val contains : Geodesy.coord -> bool
(** True if the coordinate falls inside any outline. *)

val nearest_name : Geodesy.coord -> string option
(** Name of the outline containing the coordinate, if any. *)

val region : Projection.t -> within_km:float -> Region.t
(** Land as a planar region: every outline is densified (so long edges
    follow the projection's curvature), projected, and clipped to a square
    of half-size [within_km] around the projection focus.  Intersecting a
    location estimate with this region implements the paper's ocean
    constraint. *)

val uninhabited : (string * Geodesy.coord array) list
(** Interior-conservative outlines of large uninhabited areas (Sahara,
    Rub' al Khali, Gobi, Taklamakan, central Australia): the paper's
    "deserts, uninhabitable areas" negative constraints (§2.5).  No city
    in the {!Netsim} database falls inside any of them (enforced by the
    test suite). *)

val uninhabited_region : Projection.t -> within_km:float -> Region.t
(** The uninhabited areas as a planar region near the projection focus;
    subtracting it from (or adding it as a negative constraint to) a
    location estimate implements the §2.5 desert constraint. *)

val in_uninhabited : Geodesy.coord -> bool
