let sorted_dedup pts =
  let arr = Array.copy pts in
  Array.sort Point.compare arr;
  let out = ref [] in
  Array.iter
    (fun p ->
      match !out with
      | q :: _ when Point.equal ~eps:0.0 p q -> ()
      | _ -> out := p :: !out)
    arr;
  Array.of_list (List.rev !out)

(* Builds one chain of the monotone-chain algorithm.  [keep] decides whether
   the turn at the middle point is acceptable: for the lower chain we demand
   strict counterclockwise turns, for the upper chain strict clockwise. *)
let build_chain pts keep =
  let stack = ref [] in
  Array.iter
    (fun p ->
      let rec pop () =
        match !stack with
        | b :: a :: _ when not (keep a b p) ->
            stack := List.tl !stack;
            pop ()
        | _ -> ()
      in
      pop ();
      stack := p :: !stack)
    pts;
  Array.of_list (List.rev !stack)

let lower_chain pts =
  let pts = sorted_dedup pts in
  if Array.length pts <= 2 then pts
  else build_chain pts (fun a b c -> Point.orient2d a b c > 1e-12)

let upper_chain pts =
  let pts = sorted_dedup pts in
  if Array.length pts <= 2 then pts
  else build_chain pts (fun a b c -> Point.orient2d a b c < -1e-12)

let hull pts =
  let pts = sorted_dedup pts in
  let n = Array.length pts in
  if n <= 2 then pts
  else begin
    let lower = build_chain pts (fun a b c -> Point.orient2d a b c > 1e-12) in
    let upper = build_chain pts (fun a b c -> Point.orient2d a b c < -1e-12) in
    (* Concatenate, dropping the duplicated endpoints; upper runs right to
       left to give counterclockwise order. *)
    let nl = Array.length lower and nu = Array.length upper in
    let out = Array.make (nl + nu - 2) lower.(0) in
    Array.blit lower 0 out 0 (nl - 1);
    for i = 0 to nu - 2 do
      out.(nl - 1 + i) <- upper.(nu - 1 - i)
    done;
    out
  end

let eval_chain chain x =
  let n = Array.length chain in
  if n = 0 then invalid_arg "Convex_hull.eval_chain: empty chain";
  if x <= chain.(0).Point.x then chain.(0).Point.y
  else if x >= chain.(n - 1).Point.x then chain.(n - 1).Point.y
  else begin
    (* Binary search for the segment containing x. *)
    let rec go lo hi =
      if hi - lo <= 1 then (lo, hi)
      else
        let mid = (lo + hi) / 2 in
        if chain.(mid).Point.x <= x then go mid hi else go lo mid
    in
    let lo, hi = go 0 (n - 1) in
    let a = chain.(lo) and b = chain.(hi) in
    if b.Point.x -. a.Point.x < 1e-15 then a.Point.y
    else
      let t = (x -. a.Point.x) /. (b.Point.x -. a.Point.x) in
      a.Point.y +. (t *. (b.Point.y -. a.Point.y))
  end

let contains hull_pts p =
  let n = Array.length hull_pts in
  if n = 0 then false
  else if n = 1 then Point.equal ~eps:1e-9 hull_pts.(0) p
  else if n = 2 then
    (* Degenerate hull: a segment. *)
    let a = hull_pts.(0) and b = hull_pts.(1) in
    let ab = Point.sub b a in
    let ap = Point.sub p a in
    Float.abs (Point.cross ab ap) <= 1e-9 *. (1.0 +. Point.norm ab)
    && Point.dot ap ab >= -1e-9
    && Point.dot ap ab <= Point.norm2 ab +. 1e-9
  else begin
    let rec go i =
      if i >= n then true
      else
        let a = hull_pts.(i) and b = hull_pts.((i + 1) mod n) in
        if Point.orient2d a b p < -1e-9 then false else go (i + 1)
    in
    go 0
  end
