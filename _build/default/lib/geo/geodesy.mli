(** Spherical-earth geodesy.

    Coordinates are degrees of latitude/longitude on a sphere of mean radius
    6371.0088 km.  The paper reports distances in miles; the library computes
    in kilometers and converts at the edges. *)

type coord = { lat : float; lon : float }
(** Degrees; latitude in [-90, 90], longitude in [-180, 180). *)

val coord : lat:float -> lon:float -> coord
(** Constructor that normalizes longitude into [-180, 180) and clamps
    latitude.
    @raise Invalid_argument on non-finite input. *)

val earth_radius_km : float

val km_per_mile : float
val miles_of_km : float -> float
val km_of_miles : float -> float

val deg_to_rad : float -> float
val rad_to_deg : float -> float

val distance_km : coord -> coord -> float
(** Great-circle distance, haversine formulation (stable at small angles). *)

val distance_miles : coord -> coord -> float

val initial_bearing : coord -> coord -> float
(** Forward azimuth at the first point, radians clockwise from north,
    in [0, 2 pi). *)

val destination : coord -> bearing:float -> distance_km:float -> coord
(** Point reached by travelling [distance_km] along the great circle leaving
    at [bearing] radians. *)

val midpoint : coord -> coord -> coord
(** Great-circle midpoint. *)

val equal : ?eps:float -> coord -> coord -> bool
(** Componentwise degrees comparison (default eps 1e-9). *)

val pp : Format.formatter -> coord -> unit

(** Light-speed constants used to turn RTTs into distance bounds. *)

val c_fiber_km_per_ms : float
(** Propagation speed of light in fiber, ~2/3 c, in km per millisecond. *)

val rtt_to_max_distance_km : float -> float
(** [rtt_to_max_distance_km rtt_ms] is the farthest a host can be given a
    round-trip time: [rtt/2 * c_fiber]. *)

val distance_to_min_rtt_ms : float -> float
(** Inverse of {!rtt_to_max_distance_km}: the smallest possible RTT for a
    given one-way distance in km. *)
