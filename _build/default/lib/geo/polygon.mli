(** Simple polygons in the projected plane.

    A polygon is a closed chain of vertices without an explicit repeat of the
    first vertex.  Constructors normalize orientation to counterclockwise
    (positive signed area).  Self-intersecting input is not detected here;
    the clipping layer ({!Clip}) is responsible for only producing simple
    polygons. *)

type t
(** Immutable simple polygon, counterclockwise. *)

val of_points : Point.t array -> t
(** Builds a polygon, dropping consecutive duplicate vertices and reorienting
    to counterclockwise if needed.
    @raise Invalid_argument if fewer than 3 distinct vertices remain. *)

val of_points_list : Point.t list -> t

val vertices : t -> Point.t array
(** The vertex array (do not mutate). *)

val num_vertices : t -> int

val signed_area : Point.t array -> float
(** Shoelace area of a raw ring: positive iff counterclockwise. *)

val area : t -> float
(** Enclosed area (always positive). *)

val perimeter : t -> float

val centroid : t -> Point.t
(** Area centroid. *)

val bounding_box : t -> Point.t * Point.t
(** (min corner, max corner). *)

val contains : t -> Point.t -> bool
(** Point-in-polygon by ray casting; boundary points count as inside. *)

val on_boundary : ?eps:float -> t -> Point.t -> bool
(** True if the point lies within [eps] of an edge (default 1e-9). *)

val is_convex : t -> bool

val edges : t -> (Point.t * Point.t) array
(** Directed edge list [(v_i, v_{i+1 mod n})]. *)

val translate : Point.t -> t -> t
val transform : (Point.t -> Point.t) -> t -> t
(** Apply a point map to every vertex.  The map should preserve simplicity
    (affine maps and mild projections do). *)

val regular : center:Point.t -> radius:float -> sides:int -> t
(** Regular n-gon; first vertex towards +x.  Requires [sides >= 3],
    [radius > 0]. *)

val rectangle : Point.t -> Point.t -> t
(** Axis-aligned rectangle from two opposite corners.
    @raise Invalid_argument if degenerate. *)

val nearest_boundary_distance : t -> Point.t -> float
(** Distance from a point to the polygon boundary (0 on the boundary). *)

val sample_interior : Stats.Rng.t -> t -> Point.t
(** Uniform random interior point by rejection over the bounding box. *)

val cleanup : ?eps:float -> t -> t option
(** Remove boundary debris: vertices within [eps] of their successor and
    vertices within [eps] of the chord joining their neighbours (default
    [eps] 1e-3 km = 1 m — far below geolocalization scales).  Chained
    clipping operations accumulate micro-edges that can otherwise defeat
    the clipper's degeneracy handling; every clip output is passed through
    this.  [None] when fewer than 3 vertices survive. *)

val equal : ?eps:float -> t -> t -> bool
(** Equality up to rotation of the vertex list and [eps] per coordinate. *)

val pp : Format.formatter -> t -> unit
