type t = {
  lo : Point.t;
  hi : Point.t;
  resolution : int;
  bits : Bytes.t; (* row-major, one byte per cell for simplicity *)
}

let same_geometry a b =
  a.resolution = b.resolution && Point.equal ~eps:0.0 a.lo b.lo && Point.equal ~eps:0.0 a.hi b.hi

let cell_size t =
  let n = float_of_int t.resolution in
  ((t.hi.Point.x -. t.lo.Point.x) /. n, (t.hi.Point.y -. t.lo.Point.y) /. n)

let create ~lo ~hi ~resolution pred =
  if resolution < 1 then invalid_arg "Grid_region.create: resolution must be >= 1";
  if hi.Point.x <= lo.Point.x || hi.Point.y <= lo.Point.y then
    invalid_arg "Grid_region.create: degenerate box";
  let t = { lo; hi; resolution; bits = Bytes.make (resolution * resolution) '\000' } in
  let dx, dy = cell_size t in
  for j = 0 to resolution - 1 do
    for i = 0 to resolution - 1 do
      let center =
        Point.make
          (lo.Point.x +. ((float_of_int i +. 0.5) *. dx))
          (lo.Point.y +. ((float_of_int j +. 0.5) *. dy))
      in
      if pred center then Bytes.set t.bits ((j * resolution) + i) '\001'
    done
  done;
  t

let of_region ~lo ~hi ~resolution region = create ~lo ~hi ~resolution (Region.contains region)

let zip op a b =
  if not (same_geometry a b) then invalid_arg "Grid_region: geometry mismatch";
  let bits = Bytes.copy a.bits in
  for k = 0 to Bytes.length bits - 1 do
    let va = Bytes.get a.bits k <> '\000' and vb = Bytes.get b.bits k <> '\000' in
    Bytes.set bits k (if op va vb then '\001' else '\000')
  done;
  { a with bits }

let inter a b = zip ( && ) a b
let union a b = zip ( || ) a b
let diff a b = zip (fun x y -> x && not y) a b

let count t =
  let n = ref 0 in
  Bytes.iter (fun c -> if c <> '\000' then incr n) t.bits;
  !n

let cell_area t =
  let dx, dy = cell_size t in
  dx *. dy

let area t = float_of_int (count t) *. cell_area t

let contains t p =
  let dx, dy = cell_size t in
  let i = int_of_float (Float.floor ((p.Point.x -. t.lo.Point.x) /. dx)) in
  let j = int_of_float (Float.floor ((p.Point.y -. t.lo.Point.y) /. dy)) in
  i >= 0 && i < t.resolution && j >= 0 && j < t.resolution
  && Bytes.get t.bits ((j * t.resolution) + i) <> '\000'

let fill_fraction t = float_of_int (count t) /. float_of_int (t.resolution * t.resolution)
