(** Boolean operations on simple polygons.

    This is the engine behind {!Region}: Octant chains hundreds of
    intersections, differences and unions while building its weighted
    constraint arrangement (paper §2, §2.4).

    The implementation is Greiner–Hormann clipping with three safeguards:

    - a Sutherland–Hodgman fast path when both operands are convex;
    - containment special-casing when the boundaries do not intersect,
      including hole elimination for differences: when the clip polygon lies
      strictly inside the subject, the subject is split in two along a line
      through the clip's centroid so that every output polygon stays simple
      and hole-free;
    - deterministic epsilon-perturbation retries when a degenerate
      configuration (vertex on edge, collinear overlapping edges, equal
      intersection parameters) is detected.  Perturbations are of the order
      of 1e-9 km and are irrelevant at geolocalization scales.

    All results are lists of disjoint-interior simple polygons (possibly
    empty).  Slivers with area below 1e-9 are dropped. *)

exception Degenerate
(** Raised internally when a degenerate configuration survives all
    perturbation retries; callers of this module never see it unless the
    inputs are pathological (e.g. zero-area polygons). *)

val inter : Polygon.t -> Polygon.t -> Polygon.t list
(** Intersection [a ∩ b]. *)

val union : Polygon.t -> Polygon.t -> Polygon.t list
(** Union [a ∪ b].  When the operands are disjoint the result is both
    operands unchanged. *)

val diff : Polygon.t -> Polygon.t -> Polygon.t list
(** Difference [a \ b], hole-free by construction. *)

val convex_inter : Polygon.t -> Polygon.t -> Polygon.t option
(** Sutherland–Hodgman fast path; exposed for tests.  Both inputs must be
    convex; the result, when non-degenerate, is their convex intersection. *)
