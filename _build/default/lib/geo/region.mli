(** Location regions: the paper's core geometric object.

    A region is the set of points where a node may be located (paper §2).
    It is represented as a list of disjoint-interior simple polygons — the
    flattened form of a set of Bezier-bounded areas — and supports the three
    boolean operations Octant chains while solving a constraint system, plus
    the dilation/erosion operations needed for constraints issued by
    {e secondary} landmarks whose own position is a region rather than a
    point.

    Regions are non-convex and possibly disconnected by construction, which
    is exactly what lets Octant use negative information.  The compact
    Bezier form is available through {!to_bezier_paths}. *)

type t
(** Immutable region; possibly empty. *)

val empty : t
val is_empty : t -> bool

val of_polygon : Polygon.t -> t

val of_polygons : Polygon.t list -> t
(** Pieces must have pairwise disjoint interiors (not checked). *)

val of_bezier_path : ?tolerance:float -> Bezier.path -> t
(** Flatten a closed Bezier path into a region. *)

val disk : ?segments:int -> center:Point.t -> radius:float -> unit -> t
(** Disk approximated by a regular polygon (default 64 sides, area error
    0.16%).  This is the shape of a positive constraint from a primary
    landmark. *)

val annulus : ?segments:int -> center:Point.t -> r_inner:float -> r_outer:float -> unit -> t
(** Annulus built directly as two half-ring polygons (no clipping): the
    shape of a (positive, negative) constraint pair from a primary
    landmark.  Requires [0 <= r_inner < r_outer]. *)

val halfplane_rect : anchor:Point.t -> normal:Point.t -> extent:float -> t
(** A large rectangle approximating the halfplane
    [{p | dot (p - anchor) normal <= 0}], clipped to [extent] kilometers
    around the anchor.  Used to fold linear hints into the solver. *)

val pieces : t -> Polygon.t list

val inter : t -> t -> t
val union : t -> t -> t
val diff : t -> t -> t

val inter_all : t list -> t
(** Left fold of {!inter}; [inter_all []] is undefined
    (@raise Invalid_argument). *)

val area : t -> float
(** Total area in km^2. *)

val contains : t -> Point.t -> bool

val centroid : t -> Point.t
(** Area-weighted centroid over all pieces.
    @raise Invalid_argument on the empty region. *)

val bounding_box : t -> (Point.t * Point.t) option

val convex_hull : t -> Point.t array
(** Convex hull of all piece vertices; empty array for the empty region. *)

val dilate : t -> float -> t
(** Minkowski dilation by a disk of the given radius, over-approximated by
    the offset of the region's convex hull.  This realizes a positive
    constraint from a secondary landmark:
    [gamma = U_{x in beta} disk x d] (paper §2).  Over-approximation
    preserves soundness (the target can only gain candidate area, never
    lose the true location). *)

val erode_to_common_disk : t -> float -> t
(** The set of points within distance [d] of {e every} point of the region:
    [gamma = ∩_{x in beta} disk x d].  Because the max distance to a convex
    set is attained at a vertex, this is exactly the intersection of disks
    centered at the region's hull vertices.  This realizes a negative
    constraint from a secondary landmark. *)

val sample_grid : t -> spacing:float -> Point.t list
(** Interior points on a square lattice with the given spacing; used for
    numerical integration and point-estimate refinement. *)

val to_bezier_paths : t -> Bezier.path list
(** Compact output form: each piece boundary as a smooth closed Bezier path
    (Catmull–Rom fit through its vertices). *)

val simplify : ?tolerance:float -> t -> t
(** Douglas–Peucker simplification of each piece boundary (default
    tolerance 0.5 km); drops pieces that degenerate. *)

val pp : Format.formatter -> t -> unit
