(* Outlines are hand-drawn and deliberately generous: coastal cities must
   fall inside.  Vertices are (lat, lon) in degrees. *)

let c lat lon = Geodesy.coord ~lat ~lon

let north_america =
  [|
    c 72.0 (-168.0); c 71.0 (-156.0); c 70.0 (-140.0); c 72.0 (-125.0); c 70.0 (-100.0);
    c 68.0 (-90.0); c 66.0 (-82.0); c 64.0 (-77.0); c 60.0 (-64.0); c 58.0 (-61.0);
    c 52.0 (-54.0); c 48.5 (-51.0); c 45.5 (-58.0); c 43.5 (-65.0); c 44.0 (-68.5);
    c 41.0 (-69.0); c 40.0 (-72.5); c 38.5 (-74.0); c 35.0 (-74.5); c 32.0 (-79.0);
    c 28.0 (-79.5); c 24.5 (-79.8); c 24.0 (-82.0); c 26.5 (-83.0); c 29.0 (-86.0);
    c 28.5 (-90.0); c 28.0 (-94.0); c 25.5 (-97.0); c 21.0 (-86.5); c 17.5 (-87.5);
    c 15.0 (-83.0); c 11.5 (-83.5); c 8.5 (-77.0); c 7.0 (-81.0); c 9.5 (-85.5);
    c 13.0 (-88.5); c 15.0 (-93.0); c 15.5 (-97.0); c 19.0 (-106.0); c 22.5 (-110.5);
    c 26.0 (-113.0); c 31.5 (-117.5); c 33.5 (-119.0); c 36.0 (-122.5); c 40.0 (-125.0);
    c 46.0 (-125.0); c 49.0 (-128.0); c 53.0 (-133.5); c 57.0 (-137.0); c 59.5 (-141.5);
    c 59.0 (-152.0); c 55.0 (-162.0); c 58.0 (-166.0); c 64.0 (-166.0);
  |]

let south_america =
  [|
    c 12.5 (-72.0); c 10.8 (-63.5); c 8.5 (-60.0); c 6.0 (-54.0); c 0.5 (-49.5);
    c (-4.5) (-36.5); c (-8.0) (-34.0); c (-13.0) (-38.0); c (-18.0) (-39.0);
    c (-23.0) (-41.5); c (-25.5) (-47.5); c (-29.0) (-49.0); c (-34.5) (-53.5);
    c (-39.0) (-57.5); c (-43.0) (-62.0); c (-47.0) (-65.0); c (-51.0) (-68.0);
    c (-55.0) (-67.0); c (-54.5) (-72.0); c (-50.0) (-75.5); c (-42.0) (-75.0);
    c (-33.0) (-72.5); c (-23.0) (-71.0); c (-18.0) (-71.5); c (-14.0) (-77.0);
    c (-6.0) (-81.5); c (-3.5) (-81.5); c 1.5 (-80.5); c 4.5 (-78.5); c 7.5 (-78.5);
    c 9.5 (-76.5);
  |]

(* Mainland Europe + Asia as one generous outline; Scandinavia and the
   Baltic are interior, as are the Black and Caspian seas.  Coastal detail
   around Italy/Greece/Iberia is kept so Mediterranean hosts localize onto
   the right peninsulas. *)
let eurasia =
  [|
    c 71.0 28.0; c 68.0 44.0; c 70.0 60.0; c 73.0 80.0; c 75.5 100.0; c 72.0 130.0;
    c 70.0 160.0; c 65.0 179.0; c 60.0 163.0; c 55.0 157.0; c 51.5 143.5; c 46.0 138.5;
    c 43.0 132.0; c 36.8 130.2; c 34.6 129.3; c 34.2 126.2; c 37.0 122.5; c 34.0 120.0; c 30.5 122.5;
    c 27.0 120.5; c 22.1 114.8; c 21.0 108.0; c 16.0 108.5; c 8.2 106.0; c 0.5 104.5;
    c 1.2 103.0; c 2.5 100.9; c 5.5 99.8; c 7.5 98.2; c 15.0 94.0; c 21.5 91.5; c 19.0 85.5; c 12.8 80.5; c 7.5 77.5;
    c 15.0 73.0; c 21.0 70.0; c 24.5 66.5; c 25.8 60.5; c 26.8 56.9; c 22.0 59.8; c 16.5 54.5;
    c 12.5 43.8; c 21.0 38.5; c 27.5 33.8; c 31.0 32.3; c 33.0 34.8; c 36.5 35.5;
    c 36.0 30.5; c 36.3 27.5; c 35.8 22.8; c 37.0 21.0; c 39.0 20.0; c 40.0 18.8;
    c 39.0 17.0; c 37.5 15.8; c 36.0 14.5; c 37.8 12.0; c 40.0 15.0; c 42.5 10.5;
    c 43.2 6.8; c 42.0 3.5; c 39.0 (-0.5); c 36.8 (-2.5); c 35.8 (-6.0); c 36.8 (-9.5);
    c 39.0 (-10.0); c 43.5 (-9.8); c 43.8 (-2.0); c 47.5 (-5.5); c 49.0 (-2.0);
    c 50.8 1.2; c 52.8 4.2; c 55.0 7.8; c 57.5 7.5; c 59.0 4.8; c 62.0 4.3;
    c 67.0 12.0; c 70.0 18.0;
  |]

let africa =
  [|
    c 35.5 (-6.2); c 37.3 5.5; c 37.8 11.2; c 33.5 12.0; c 31.5 20.0; c 31.5 31.8; c 27.0 34.5;
    c 20.0 38.0; c 15.0 40.5; c 11.5 44.5; c 11.8 51.5; c 6.0 49.5; c 1.0 45.5;
    c (-4.5) 40.5; c (-11.0) 41.0; c (-16.0) 41.5; c (-20.5) 36.0; c (-26.5) 33.5;
    c (-30.5) 31.5; c (-34.5) 27.0; c (-35.2) 19.5; c (-33.5) 17.5; c (-29.0) 16.0;
    c (-23.0) 14.0; c (-17.0) 11.0; c (-11.0) 13.2; c (-6.0) 11.8; c 0.0 8.8;
    c 4.2 5.8; c 4.5 (-2.0); c 4.0 (-8.5); c 8.0 (-14.0); c 12.5 (-17.5);
    c 16.0 (-17.0); c 21.5 (-18.0); c 26.0 (-15.5); c 29.0 (-11.5); c 33.5 (-9.5);
  |]

let australia =
  [|
    c (-10.5) 142.3; c (-16.5) 146.2; c (-20.0) 149.5; c (-25.0) 154.0; c (-30.0) 153.8;
    c (-34.2) 151.8; c (-37.8) 150.5; c (-39.5) 146.8; c (-38.8) 141.0; c (-35.5) 136.5;
    c (-35.2) 129.0; c (-34.5) 123.5; c (-35.5) 117.5; c (-33.5) 114.5; c (-31.0) 114.8;
    c (-26.0) 112.8; c (-21.5) 113.5; c (-17.0) 122.0; c (-13.5) 126.0; c (-11.0) 131.5;
    c (-12.5) 136.5; c (-11.5) 140.0;
  |]

let great_britain =
  [|
    c 49.8 (-6.0); c 50.5 (-1.0); c 50.8 1.6; c 52.5 2.1; c 53.5 0.5; c 55.0 (-1.0);
    c 57.5 (-1.5); c 59.0 (-3.0); c 58.5 (-6.5); c 56.0 (-6.8); c 54.5 (-4.5);
    c 53.0 (-5.3); c 51.5 (-5.8); c 50.0 (-6.5);
  |]

let ireland =
  [|
    c 51.2 (-10.5); c 51.3 (-7.8); c 52.0 (-5.9); c 53.5 (-5.8); c 55.0 (-5.3);
    c 55.6 (-8.0); c 55.3 (-10.2); c 53.0 (-10.5);
  |]

let japan =
  [|
    c 30.5 129.5; c 31.0 132.0; c 33.0 134.8; c 34.2 137.2; c 34.8 140.3; c 36.5 141.3;
    c 39.5 142.3; c 42.0 143.5; c 43.0 146.0; c 45.8 142.5; c 43.5 139.6; c 40.0 139.2;
    c 37.5 136.3; c 35.3 132.3; c 33.3 129.2;
  |]

let taiwan = [| c 21.7 119.9; c 25.5 121.0; c 25.3 122.2; c 21.9 121.3 |]

let new_zealand_north = [| c (-34.0) 172.3; c (-37.5) 179.0; c (-41.8) 175.5; c (-40.0) 172.8 |]
let new_zealand_south = [| c (-40.3) 172.0; c (-42.0) 174.5; c (-46.8) 169.5; c (-46.5) 166.0; c (-41.5) 170.5 |]

let iceland = [| c 63.2 (-25.0); c 63.2 (-13.0); c 66.8 (-13.5); c 66.8 (-24.8) |]

let continents =
  [
    ("north-america", north_america);
    ("south-america", south_america);
    ("eurasia", eurasia);
    ("africa", africa);
    ("australia", australia);
    ("great-britain", great_britain);
    ("ireland", ireland);
    ("japan", japan);
    ("taiwan", taiwan);
    ("new-zealand-north", new_zealand_north);
    ("new-zealand-south", new_zealand_south);
    ("iceland", iceland);
  ]

(* Deliberately interior-conservative outlines of large uninhabited
   areas — the paper's "deserts, uninhabitable areas" negative
   constraints.  Edges stay well clear of inhabited rims (the Nile
   valley, the Maghreb coast, Gulf cities, the Australian coast). *)
let sahara_interior =
  [|
    c 18.0 (-10.0); c 28.0 (-5.0); c 30.0 5.0; c 28.0 15.0; c 22.0 25.0; c 16.0 20.0;
    c 15.0 0.0; c 16.0 (-8.0);
  |]

let empty_quarter = [| c 17.0 46.0; c 22.0 47.0; c 22.0 54.0; c 18.0 55.0; c 16.0 50.0 |]

let gobi = [| c 40.0 95.0; c 44.0 100.0; c 45.0 110.0; c 42.0 112.0; c 39.0 104.0 |]

let taklamakan = [| c 37.0 78.0; c 40.0 80.0; c 41.0 87.0; c 38.0 89.0; c 36.0 82.0 |]

let australian_interior =
  [| c (-30.0) 122.0; c (-24.0) 125.0; c (-22.0) 132.0; c (-25.0) 138.0; c (-29.0) 135.0; c (-31.0) 128.0 |]

let uninhabited =
  [
    ("sahara-interior", sahara_interior);
    ("empty-quarter", empty_quarter);
    ("gobi", gobi);
    ("taklamakan", taklamakan);
    ("australian-interior", australian_interior);
  ]

(* Point-in-polygon in lat/lon space.  None of the outlines cross the
   antimeridian, so plain planar ray casting on (lon, lat) is safe. *)
let contains_outline outline coord =
  let n = Array.length outline in
  let inside = ref false in
  let px = coord.Geodesy.lon and py = coord.Geodesy.lat in
  for i = 0 to n - 1 do
    let a = outline.(i) and b = outline.((i + 1) mod n) in
    let ay = a.Geodesy.lat and by = b.Geodesy.lat in
    if (ay > py) <> (by > py) then begin
      let x_cross = a.Geodesy.lon +. ((py -. ay) /. (by -. ay) *. (b.Geodesy.lon -. a.Geodesy.lon)) in
      if px < x_cross then inside := not !inside
    end
  done;
  !inside

let nearest_name coord =
  List.find_map (fun (name, outline) -> if contains_outline outline coord then Some name else None) continents

let contains coord = Option.is_some (nearest_name coord)

(* Subdivide outline edges to at most [step_km] so that projecting captures
   great-circle curvature. *)
let densify step_km outline =
  let out = ref [] in
  let n = Array.length outline in
  for i = 0 to n - 1 do
    let a = outline.(i) and b = outline.((i + 1) mod n) in
    out := a :: !out;
    let d = Geodesy.distance_km a b in
    let pieces = int_of_float (Float.ceil (d /. step_km)) in
    if pieces > 1 then begin
      let bearing = Geodesy.initial_bearing a b in
      for k = 1 to pieces - 1 do
        let frac = float_of_int k /. float_of_int pieces in
        out := Geodesy.destination a ~bearing ~distance_km:(d *. frac) :: !out
      done
    end
  done;
  Array.of_list (List.rev !out)

let region_of_outlines outlines projection ~within_km =
  if within_km <= 0.0 then invalid_arg "Landmass.region: within_km must be positive";
  let box =
    Polygon.rectangle
      (Point.make (-.within_km) (-.within_km))
      (Point.make within_km within_km)
  in
  let box_region = Region.of_polygon box in
  let focus = Projection.focus projection in
  let land_parts =
    List.filter_map
      (fun (_, outline) ->
        (* Skip outlines entirely far from the focus: the projection blows
           up towards the antipode. *)
        let close =
          Array.exists (fun v -> Geodesy.distance_km focus v < within_km +. 5000.0) outline
        in
        if not close then None
        else
          let dense = densify 400.0 outline in
          let projected = Array.map (Projection.project projection) dense in
          match Polygon.of_points projected with
          | poly -> Some (Region.inter (Region.of_polygon poly) box_region)
          | exception Invalid_argument _ -> None)
      outlines
  in
  List.fold_left (fun acc r -> Region.union acc r) Region.empty land_parts

let region projection ~within_km = region_of_outlines continents projection ~within_km

let uninhabited_region projection ~within_km =
  region_of_outlines uninhabited projection ~within_km

let in_uninhabited coord =
  List.exists (fun (_, outline) -> contains_outline outline coord) uninhabited
