type t = { focus : Geodesy.coord }

let make focus = { focus }
let focus t = t.focus

let project t c =
  let rho = Geodesy.distance_km t.focus c in
  if rho = 0.0 then Point.zero
  else
    let theta = Geodesy.initial_bearing t.focus c in
    (* North = +y, East = +x; bearing is clockwise from north. *)
    Point.make (rho *. sin theta) (rho *. cos theta)

let unproject t p =
  let rho = Point.norm p in
  if rho = 0.0 then t.focus
  else
    let theta = atan2 p.Point.x p.Point.y in
    let theta = if theta < 0.0 then theta +. (2.0 *. Float.pi) else theta in
    Geodesy.destination t.focus ~bearing:theta ~distance_km:rho

let project_many t = Array.map (project t)
let unproject_many t = Array.map (unproject t)

let distance_distortion t a b =
  let gc = Geodesy.distance_km a b in
  if gc = 0.0 then 1.0 else Point.dist (project t a) (project t b) /. gc
