lib/geo/region.mli: Bezier Format Point Polygon
