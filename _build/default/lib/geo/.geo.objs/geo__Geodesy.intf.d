lib/geo/geodesy.mli: Format
