lib/geo/polygon.mli: Format Point Stats
