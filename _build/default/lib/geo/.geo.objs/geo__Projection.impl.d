lib/geo/projection.ml: Array Float Geodesy Point
