lib/geo/bezier.ml: Array Float Format List Point Polygon
