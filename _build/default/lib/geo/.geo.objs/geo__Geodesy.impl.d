lib/geo/geodesy.ml: Float Format
