lib/geo/grid_region.ml: Bytes Float Point Region
