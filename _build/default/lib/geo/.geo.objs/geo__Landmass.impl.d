lib/geo/landmass.ml: Array Float Geodesy List Option Point Polygon Projection Region
