lib/geo/bezier.mli: Format Point Polygon
