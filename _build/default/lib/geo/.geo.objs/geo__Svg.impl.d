lib/geo/svg.ml: Array Bezier Buffer Float List Point Polygon Printf Region String
