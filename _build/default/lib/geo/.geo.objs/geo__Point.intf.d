lib/geo/point.mli: Format
