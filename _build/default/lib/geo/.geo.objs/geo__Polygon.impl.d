lib/geo/polygon.ml: Array Float Format List Point Stats
