lib/geo/landmass.mli: Geodesy Projection Region
