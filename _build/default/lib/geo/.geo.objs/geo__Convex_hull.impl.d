lib/geo/convex_hull.ml: Array Float List Point
