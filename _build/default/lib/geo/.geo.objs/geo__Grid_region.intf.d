lib/geo/grid_region.mli: Point Region
