lib/geo/clip.ml: Array Convex_hull Float List Point Polygon Printf Sys
