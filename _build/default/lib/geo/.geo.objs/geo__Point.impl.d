lib/geo/point.ml: Float Format
