lib/geo/projection.mli: Geodesy Point
