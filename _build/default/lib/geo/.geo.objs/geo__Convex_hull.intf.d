lib/geo/convex_hull.mli: Point
