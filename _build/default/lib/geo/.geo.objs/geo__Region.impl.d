lib/geo/region.ml: Array Bezier Clip Convex_hull Float Format List Point Polygon
