lib/geo/svg.mli: Bezier Point Region
