lib/geo/clip.mli: Polygon
