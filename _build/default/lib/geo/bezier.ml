type segment = { p0 : Point.t; p1 : Point.t; p2 : Point.t; p3 : Point.t }

let line a b = { p0 = a; p1 = Point.lerp a b (1.0 /. 3.0); p2 = Point.lerp a b (2.0 /. 3.0); p3 = b }

let eval s t =
  let a = Point.lerp s.p0 s.p1 t in
  let b = Point.lerp s.p1 s.p2 t in
  let c = Point.lerp s.p2 s.p3 t in
  let d = Point.lerp a b t in
  let e = Point.lerp b c t in
  Point.lerp d e t

let derivative s t =
  let d0 = Point.scale 3.0 (Point.sub s.p1 s.p0) in
  let d1 = Point.scale 3.0 (Point.sub s.p2 s.p1) in
  let d2 = Point.scale 3.0 (Point.sub s.p3 s.p2) in
  let a = Point.lerp d0 d1 t in
  let b = Point.lerp d1 d2 t in
  Point.lerp a b t

let split s t =
  let a = Point.lerp s.p0 s.p1 t in
  let b = Point.lerp s.p1 s.p2 t in
  let c = Point.lerp s.p2 s.p3 t in
  let d = Point.lerp a b t in
  let e = Point.lerp b c t in
  let m = Point.lerp d e t in
  ({ p0 = s.p0; p1 = a; p2 = d; p3 = m }, { p0 = m; p1 = e; p2 = c; p3 = s.p3 })

let point_line_distance a b p =
  let ab = Point.sub b a in
  let n = Point.norm ab in
  if n < 1e-15 then Point.dist a p else Float.abs (Point.cross ab (Point.sub p a)) /. n

let flatness s =
  Float.max (point_line_distance s.p0 s.p3 s.p1) (point_line_distance s.p0 s.p3 s.p2)

let flatten ?(tolerance = 1e-3) s =
  if tolerance <= 0.0 then invalid_arg "Bezier.flatten: tolerance must be positive";
  (* Recursive subdivision; each leaf contributes its start point. *)
  let rec go s depth acc =
    if depth > 24 || flatness s <= tolerance then s.p0 :: acc
    else
      let l, r = split s 0.5 in
      go l (depth + 1) (go r (depth + 1) acc)
  in
  go s 0 []

let arc_length ?(tolerance = 1e-3) s =
  let pts = Array.of_list (flatten ~tolerance s @ [ s.p3 ]) in
  let acc = ref 0.0 in
  for i = 0 to Array.length pts - 2 do
    acc := !acc +. Point.dist pts.(i) pts.(i + 1)
  done;
  !acc

let transform f s = { p0 = f s.p0; p1 = f s.p1; p2 = f s.p2; p3 = f s.p3 }

let reverse s = { p0 = s.p3; p1 = s.p2; p2 = s.p1; p3 = s.p0 }

type path = segment list

let is_closed ?(eps = 1e-9) = function
  | [] -> false
  | first :: _ as segs ->
      let rec go = function
        | [ last ] -> Point.equal ~eps last.p3 first.p0
        | s :: (next :: _ as rest) -> Point.equal ~eps s.p3 next.p0 && go rest
        | [] -> false
      in
      go segs

(* Magic constant for approximating a quarter circle with one cubic. *)
let kappa = 0.5522847498307936

let circle ~center ~radius =
  if radius <= 0.0 then invalid_arg "Bezier.circle: radius must be positive";
  let p dx dy = Point.add center (Point.make (radius *. dx) (radius *. dy)) in
  let quarter (x0, y0) (x1, y1) =
    (* Arc from angle of (x0,y0) to (x1,y1), both unit directions 90 deg
       apart, counterclockwise. *)
    {
      p0 = p x0 y0;
      p1 = p (x0 -. (kappa *. y0)) (y0 +. (kappa *. x0));
      p2 = p (x1 +. (kappa *. y1)) (y1 -. (kappa *. x1));
      p3 = p x1 y1;
    }
  in
  [
    quarter (1.0, 0.0) (0.0, 1.0);
    quarter (0.0, 1.0) (-1.0, 0.0);
    quarter (-1.0, 0.0) (0.0, -1.0);
    quarter (0.0, -1.0) (1.0, 0.0);
  ]

let of_polygon poly =
  let v = Polygon.vertices poly in
  let n = Array.length v in
  List.init n (fun i -> line v.(i) v.((i + 1) mod n))

let to_polygon ?(tolerance = 1e-3) path =
  let pts = List.concat_map (fun s -> flatten ~tolerance s) path in
  Polygon.of_points (Array.of_list pts)

let fit_smooth poly =
  let v = Polygon.vertices poly in
  let n = Array.length v in
  (* Catmull-Rom to Bezier: tangent at v.(i) is (v.(i+1) - v.(i-1)) / 2;
     control points sit a third of the tangent along. *)
  List.init n (fun i ->
      let prev = v.((i + n - 1) mod n) in
      let a = v.(i) in
      let b = v.((i + 1) mod n) in
      let next = v.((i + 2) mod n) in
      let t_a = Point.scale (1.0 /. 6.0) (Point.sub b prev) in
      let t_b = Point.scale (1.0 /. 6.0) (Point.sub next a) in
      { p0 = a; p1 = Point.add a t_a; p2 = Point.sub b t_b; p3 = b })

(* Exact signed area of a closed cubic path via Green's theorem.  The
   coefficients are the antisymmetrized integrals of Bernstein products:
   area = sum over segments of
     3/10 c01 + 3/20 c02 + 1/20 c03 + 3/20 c12 + 3/20 c13 + 3/10 c23
   where c_ij = cross(p_i, p_j). *)
let segment_area_contribution s =
  let c = Point.cross in
  (0.3 *. c s.p0 s.p1)
  +. (0.15 *. c s.p0 s.p2)
  +. (0.05 *. c s.p0 s.p3)
  +. (0.15 *. c s.p1 s.p2)
  +. (0.15 *. c s.p1 s.p3)
  +. (0.3 *. c s.p2 s.p3)

let area path = List.fold_left (fun acc s -> acc +. segment_area_contribution s) 0.0 path

let transform_path f path = List.map (transform f) path

let segment_count = List.length

let pp_segment fmt s =
  Format.fprintf fmt "bezier[%a -> %a -> %a -> %a]" Point.pp s.p0 Point.pp s.p1 Point.pp s.p2
    Point.pp s.p3
