type t = { x : float; y : float }

let make x y = { x; y }
let zero = { x = 0.0; y = 0.0 }

let add a b = { x = a.x +. b.x; y = a.y +. b.y }
let sub a b = { x = a.x -. b.x; y = a.y -. b.y }
let scale s a = { x = s *. a.x; y = s *. a.y }
let neg a = { x = -.a.x; y = -.a.y }

let dot a b = (a.x *. b.x) +. (a.y *. b.y)
let cross a b = (a.x *. b.y) -. (a.y *. b.x)

let norm2 a = dot a a
let norm a = sqrt (norm2 a)

let dist2 a b = norm2 (sub a b)
let dist a b = sqrt (dist2 a b)

let lerp a b t = { x = a.x +. (t *. (b.x -. a.x)); y = a.y +. (t *. (b.y -. a.y)) }
let midpoint a b = lerp a b 0.5

let rotate p theta =
  let c = cos theta and s = sin theta in
  { x = (c *. p.x) -. (s *. p.y); y = (s *. p.x) +. (c *. p.y) }

let rotate_around ~center p theta = add center (rotate (sub p center) theta)

let normalize a =
  let n = norm a in
  if n = 0.0 then invalid_arg "Point.normalize: zero vector";
  scale (1.0 /. n) a

let perp a = { x = -.a.y; y = a.x }

let equal ?(eps = 1e-9) a b = Float.abs (a.x -. b.x) <= eps && Float.abs (a.y -. b.y) <= eps

let orient2d a b c = cross (sub b a) (sub c a)

let compare a b =
  match Float.compare a.x b.x with 0 -> Float.compare a.y b.y | c -> c

let pp fmt p = Format.fprintf fmt "(%g, %g)" p.x p.y
