(** SVG rendering of planar geometry.

    Octant's output is inherently visual — non-convex, disconnected regions
    bounded by curves — and the fastest way to audit a constraint system is
    to look at it.  This renderer is deliberately dependency-free: it emits
    plain SVG 1.1 with a y-axis flip (plane "north" up), one layer per
    {!add_*} call, in insertion order. *)

type t

val create : ?width_px:int -> lo:Point.t -> hi:Point.t -> unit -> t
(** Canvas mapping the plane box [lo, hi] (km) to [width_px] pixels
    (default 900; height follows the aspect ratio). *)

val add_region :
  ?fill:string -> ?stroke:string -> ?opacity:float -> ?label:string -> t -> Region.t -> unit
(** Draw each piece of a region as a filled polygon (default translucent
    steel blue). *)

val add_bezier_paths :
  ?stroke:string -> ?stroke_width:float -> t -> Bezier.path list -> unit
(** Draw closed Bezier paths as native SVG cubic segments — the compact
    boundary form, rendered exactly. *)

val add_point : ?color:string -> ?radius_px:float -> ?label:string -> t -> Point.t -> unit
val add_circle : ?stroke:string -> t -> center:Point.t -> radius_km:float -> unit

val to_string : t -> string
val save : t -> string -> unit
(** Write the SVG document to a file. *)
