type t = { rows : int; cols : int; data : float array }

let create rows cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Matrix.create: dimensions must be positive";
  { rows; cols; data = Array.make (rows * cols) 0.0 }

let rows t = t.rows
let cols t = t.cols

let get t i j =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then invalid_arg "Matrix.get: out of bounds";
  t.data.((i * t.cols) + j)

let set t i j v =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then invalid_arg "Matrix.set: out of bounds";
  t.data.((i * t.cols) + j) <- v

let of_rows arr =
  let nrows = Array.length arr in
  if nrows = 0 then invalid_arg "Matrix.of_rows: no rows";
  let ncols = Array.length arr.(0) in
  if ncols = 0 then invalid_arg "Matrix.of_rows: empty rows";
  Array.iter (fun r -> if Array.length r <> ncols then invalid_arg "Matrix.of_rows: ragged rows") arr;
  let m = create nrows ncols in
  Array.iteri (fun i r -> Array.iteri (fun j v -> set m i j v) r) arr;
  m

let identity n =
  let m = create n n in
  for i = 0 to n - 1 do
    set m i i 1.0
  done;
  m

let copy t = { t with data = Array.copy t.data }

let transpose t =
  let m = create t.cols t.rows in
  for i = 0 to t.rows - 1 do
    for j = 0 to t.cols - 1 do
      set m j i (get t i j)
    done
  done;
  m

let mul a b =
  if a.cols <> b.rows then invalid_arg "Matrix.mul: dimension mismatch";
  let m = create a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = get a i k in
      if aik <> 0.0 then
        for j = 0 to b.cols - 1 do
          set m i j (get m i j +. (aik *. get b k j))
        done
    done
  done;
  m

let mul_vec a v =
  if a.cols <> Array.length v then invalid_arg "Matrix.mul_vec: dimension mismatch";
  Array.init a.rows (fun i ->
      let acc = ref 0.0 in
      for j = 0 to a.cols - 1 do
        acc := !acc +. (get a i j *. v.(j))
      done;
      !acc)

let map2 f a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Matrix: dimension mismatch";
  { a with data = Array.mapi (fun i x -> f x b.data.(i)) a.data }

let add a b = map2 ( +. ) a b
let sub a b = map2 ( -. ) a b
let scale s a = { a with data = Array.map (fun x -> s *. x) a.data }

let row t i = Array.init t.cols (fun j -> get t i j)
let to_rows t = Array.init t.rows (row t)

let solve a b =
  if a.rows <> a.cols then invalid_arg "Matrix.solve: matrix not square";
  if a.rows <> Array.length b then invalid_arg "Matrix.solve: rhs length mismatch";
  let n = a.rows in
  let m = copy a in
  let x = Array.copy b in
  (* Forward elimination with partial pivoting. *)
  for col = 0 to n - 1 do
    let pivot = ref col in
    for r = col + 1 to n - 1 do
      if Float.abs (get m r col) > Float.abs (get m !pivot col) then pivot := r
    done;
    if Float.abs (get m !pivot col) < 1e-12 then failwith "Matrix.solve: singular matrix";
    if !pivot <> col then begin
      for j = 0 to n - 1 do
        let tmp = get m col j in
        set m col j (get m !pivot j);
        set m !pivot j tmp
      done;
      let tmp = x.(col) in
      x.(col) <- x.(!pivot);
      x.(!pivot) <- tmp
    end;
    for r = col + 1 to n - 1 do
      let factor = get m r col /. get m col col in
      if factor <> 0.0 then begin
        for j = col to n - 1 do
          set m r j (get m r j -. (factor *. get m col j))
        done;
        x.(r) <- x.(r) -. (factor *. x.(col))
      end
    done
  done;
  (* Back substitution. *)
  for r = n - 1 downto 0 do
    let acc = ref x.(r) in
    for j = r + 1 to n - 1 do
      acc := !acc -. (get m r j *. x.(j))
    done;
    x.(r) <- !acc /. get m r r
  done;
  x

let frobenius_norm t = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 t.data)

let equal ?(eps = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= eps) a.data b.data

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  for i = 0 to t.rows - 1 do
    Format.fprintf fmt "[";
    for j = 0 to t.cols - 1 do
      if j > 0 then Format.fprintf fmt ", ";
      Format.fprintf fmt "%g" (get t i j)
    done;
    Format.fprintf fmt "]@,"
  done;
  Format.fprintf fmt "@]"
