lib/linalg/lsq.ml: Array Matrix
