lib/linalg/nelder_mead.mli:
