lib/linalg/nelder_mead.ml: Array Float Fun
