lib/linalg/lsq.mli: Matrix
