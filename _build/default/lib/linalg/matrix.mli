(** Dense row-major matrices of floats.

    Sized for Octant's needs: height systems over tens of landmarks, i.e.
    matrices of a few hundred rows.  No blocking or SIMD; clarity first. *)

type t
(** A dense [rows x cols] matrix. *)

val create : int -> int -> t
(** [create rows cols] is the zero matrix.  Dimensions must be positive. *)

val of_rows : float array array -> t
(** Build from row vectors; all rows must share a length. *)

val identity : int -> t

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val copy : t -> t
val transpose : t -> t

val mul : t -> t -> t
(** Matrix product; inner dimensions must agree. *)

val mul_vec : t -> float array -> float array
(** Matrix-vector product. *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t

val row : t -> int -> float array
val to_rows : t -> float array array

val solve : t -> float array -> float array
(** [solve a b] solves the square system [a x = b] by Gaussian elimination
    with partial pivoting.
    @raise Failure if the matrix is singular (pivot below 1e-12). *)

val frobenius_norm : t -> float

val equal : ?eps:float -> t -> t -> bool
(** Element-wise comparison with tolerance (default [1e-9]). *)

val pp : Format.formatter -> t -> unit
