(* QR by modified Gram-Schmidt.  Returns (q, r) with a = q r, q m-by-n with
   orthonormal columns, r n-by-n upper triangular. *)
let qr a =
  let m = Matrix.rows a and n = Matrix.cols a in
  if m < n then invalid_arg "Lsq: system is underdetermined";
  let q = Matrix.copy a in
  let r = Matrix.create n n in
  for k = 0 to n - 1 do
    let norm = ref 0.0 in
    for i = 0 to m - 1 do
      let v = Matrix.get q i k in
      norm := !norm +. (v *. v)
    done;
    let norm = sqrt !norm in
    if norm < 1e-12 then failwith "Lsq: rank-deficient system";
    Matrix.set r k k norm;
    for i = 0 to m - 1 do
      Matrix.set q i k (Matrix.get q i k /. norm)
    done;
    for j = k + 1 to n - 1 do
      let dot = ref 0.0 in
      for i = 0 to m - 1 do
        dot := !dot +. (Matrix.get q i k *. Matrix.get q i j)
      done;
      Matrix.set r k j !dot;
      for i = 0 to m - 1 do
        Matrix.set q i j (Matrix.get q i j -. (!dot *. Matrix.get q i k))
      done
    done
  done;
  (q, r)

let back_substitute r y =
  let n = Matrix.rows r in
  let x = Array.copy y in
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Matrix.get r i j *. x.(j))
    done;
    x.(i) <- !acc /. Matrix.get r i i
  done;
  x

let solve a b =
  if Matrix.rows a <> Array.length b then invalid_arg "Lsq.solve: rhs length mismatch";
  let q, r = qr a in
  let qtb = Matrix.mul_vec (Matrix.transpose q) b in
  back_substitute r qtb

let solve_normal a b =
  if Matrix.rows a <> Array.length b then invalid_arg "Lsq.solve_normal: rhs length mismatch";
  let at = Matrix.transpose a in
  let ata = Matrix.mul at a in
  let atb = Matrix.mul_vec at b in
  Matrix.solve ata atb

let solve_ridge a b ~lambda =
  if lambda < 0.0 then invalid_arg "Lsq.solve_ridge: negative lambda";
  let at = Matrix.transpose a in
  let ata = Matrix.mul at a in
  let n = Matrix.cols a in
  for i = 0 to n - 1 do
    Matrix.set ata i i (Matrix.get ata i i +. lambda)
  done;
  let atb = Matrix.mul_vec at b in
  Matrix.solve ata atb

let residual_norm a x b =
  let ax = Matrix.mul_vec a x in
  let acc = ref 0.0 in
  Array.iteri
    (fun i v ->
      let d = v -. b.(i) in
      acc := !acc +. (d *. d))
    ax;
  sqrt !acc
