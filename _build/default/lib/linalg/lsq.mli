(** Linear least squares.

    Octant's height system (paper §2.2) is an overdetermined linear system:
    one equation [h_i + h_j = rtt(i,j) - propagation(i,j)] per landmark pair.
    We solve it in the l2 sense.  QR via modified Gram–Schmidt is the primary
    path; the normal-equation path is kept for cross-checking in tests. *)

val solve : Matrix.t -> float array -> float array
(** [solve a b] minimizes [||a x - b||_2] using QR factorization.
    Requires [rows a >= cols a] and full column rank.
    @raise Failure on rank deficiency. *)

val solve_normal : Matrix.t -> float array -> float array
(** Same minimization via the normal equations [(a^T a) x = a^T b].
    Less numerically stable; used as a test oracle. *)

val solve_ridge : Matrix.t -> float array -> lambda:float -> float array
(** Tikhonov-regularized least squares: minimizes
    [||a x - b||^2 + lambda ||x||^2].  Always solvable for [lambda > 0];
    the height solver uses a tiny ridge to survive degenerate topologies. *)

val residual_norm : Matrix.t -> float array -> float array -> float
(** [residual_norm a x b] is [||a x - b||_2]. *)
