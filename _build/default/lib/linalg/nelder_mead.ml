type result = { x : float array; fx : float; iterations : int; converged : bool }

(* Standard coefficients: reflection 1, expansion 2, contraction 1/2,
   shrink 1/2. *)
let alpha = 1.0
let gamma = 2.0
let rho = 0.5
let sigma = 0.5

let centroid points skip =
  let n = Array.length points.(0) in
  let c = Array.make n 0.0 in
  let count = ref 0 in
  Array.iteri
    (fun i p ->
      if i <> skip then begin
        incr count;
        Array.iteri (fun j v -> c.(j) <- c.(j) +. v) p
      end)
    points;
  Array.map (fun v -> v /. float_of_int !count) c

let combine a b ~coeff = Array.init (Array.length a) (fun i -> a.(i) +. (coeff *. (b.(i) -. a.(i))))

let minimize ?(max_iter = 2000) ?(tolerance = 1e-9) ?(step = 1.0) ~f ~init () =
  let dim = Array.length init in
  if dim = 0 then invalid_arg "Nelder_mead.minimize: empty initial point";
  (* Initial simplex: init plus one vertex offset along each axis. *)
  let vertices =
    Array.init (dim + 1) (fun i ->
        if i = 0 then Array.copy init
        else begin
          let v = Array.copy init in
          v.(i - 1) <- v.(i - 1) +. step;
          v
        end)
  in
  let values = Array.map f vertices in
  let order () =
    let idx = Array.init (dim + 1) Fun.id in
    Array.sort (fun a b -> compare values.(a) values.(b)) idx;
    let vs = Array.map (fun i -> vertices.(i)) idx in
    let fs = Array.map (fun i -> values.(i)) idx in
    Array.blit vs 0 vertices 0 (dim + 1);
    Array.blit fs 0 values 0 (dim + 1)
  in
  let iterations = ref 0 in
  let converged = ref false in
  (try
     while !iterations < max_iter do
       incr iterations;
       order ();
       if Float.abs (values.(dim) -. values.(0)) <= tolerance then begin
         converged := true;
         raise Exit
       end;
       let worst = dim in
       let c = centroid vertices worst in
       let reflected = combine c vertices.(worst) ~coeff:(-.alpha) in
       let f_reflected = f reflected in
       if f_reflected < values.(0) then begin
         (* Try to expand further along the promising direction. *)
         let expanded = combine c vertices.(worst) ~coeff:(-.gamma) in
         let f_expanded = f expanded in
         if f_expanded < f_reflected then begin
           vertices.(worst) <- expanded;
           values.(worst) <- f_expanded
         end
         else begin
           vertices.(worst) <- reflected;
           values.(worst) <- f_reflected
         end
       end
       else if f_reflected < values.(dim - 1) then begin
         vertices.(worst) <- reflected;
         values.(worst) <- f_reflected
       end
       else begin
         let contracted = combine c vertices.(worst) ~coeff:rho in
         let f_contracted = f contracted in
         if f_contracted < values.(worst) then begin
           vertices.(worst) <- contracted;
           values.(worst) <- f_contracted
         end
         else
           (* Shrink every vertex towards the best. *)
           for i = 1 to dim do
             vertices.(i) <- combine vertices.(0) vertices.(i) ~coeff:sigma;
             values.(i) <- f vertices.(i)
           done
       end
     done
   with Exit -> ());
  order ();
  { x = vertices.(0); fx = values.(0); iterations = !iterations; converged = !converged }

let minimize_multistart ?max_iter ?tolerance ?step ~restarts ~perturb ~f ~init () =
  if restarts <= 0 then invalid_arg "Nelder_mead.minimize_multistart: restarts must be positive";
  let best = ref (minimize ?max_iter ?tolerance ?step ~f ~init ()) in
  for k = 1 to restarts - 1 do
    let offset = perturb k in
    let start = Array.init (Array.length init) (fun i -> init.(i) +. offset.(i)) in
    let r = minimize ?max_iter ?tolerance ?step ~f ~init:start () in
    if r.fx < !best.fx then best := r
  done;
  !best
