(** Derivative-free minimization (Nelder–Mead downhill simplex).

    Octant's target-height stage (paper §2.2) minimizes the residue of
    [h_L + h_t + propagation(L, t) = rtt(L, t)] over the three unknowns
    (target height, longitude, latitude); the objective involves
    great-circle distances, so there is no clean gradient.  Nelder–Mead
    with standard coefficients is robust and plenty fast at dimension 3. *)

type result = {
  x : float array;     (** Argmin found. *)
  fx : float;          (** Objective value at [x]. *)
  iterations : int;    (** Iterations consumed. *)
  converged : bool;    (** True if the simplex collapsed below tolerance. *)
}

val minimize :
  ?max_iter:int ->
  ?tolerance:float ->
  ?step:float ->
  f:(float array -> float) ->
  init:float array ->
  unit ->
  result
(** [minimize ~f ~init ()] runs the downhill simplex from a simplex built
    around [init] with edge [step] (default 1.0).  Stops when the spread of
    objective values across the simplex falls below [tolerance]
    (default 1e-9) or after [max_iter] (default 2000) iterations. *)

val minimize_multistart :
  ?max_iter:int ->
  ?tolerance:float ->
  ?step:float ->
  restarts:int ->
  perturb:(int -> float array) ->
  f:(float array -> float) ->
  init:float array ->
  unit ->
  result
(** Run [restarts] independent minimizations from [init + perturb k] and keep
    the best; guards against local minima of the height residual, which is
    multimodal when landmarks are nearly collinear. *)
