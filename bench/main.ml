(* Benchmark harness: regenerates every figure of the paper's evaluation
   plus ablations and micro-benchmarks.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe fig2       -- latency/distance calibration scatter
     dune exec bench/main.exe fig3       -- error CDFs, all four methods
     dune exec bench/main.exe fig4       -- coverage vs number of landmarks
     dune exec bench/main.exe ablation   -- per-mechanism ablation
     dune exec bench/main.exe timing     -- end-to-end solution times
     dune exec bench/main.exe adversary  -- error vs f under colluding Byzantine landmarks
     dune exec bench/main.exe refine     -- adaptive landmark admission, error/clips vs budget
     dune exec bench/main.exe stream     -- persistent sessions: incremental folds vs re-solves
     dune exec bench/main.exe batch      -- multicore batch engine, sequential vs N domains
     dune exec bench/main.exe shard      -- planet substrate + sharded multi-daemon serving
     dune exec bench/main.exe region     -- region backends: exact vs grid vs hybrid prefilter
     dune exec bench/main.exe geom       -- clip kernels: buffer vs list reference, alloc/op
     dune exec bench/main.exe micro      -- Bechamel micro-benchmarks

   Absolute numbers come from the simulator substrate, not PlanetLab; the
   comparisons against the paper's numbers are printed alongside. *)

let seed = 7
let n_hosts = 51

let banner title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n%!"

(* Machine-readable snapshots for the performance-tracking targets, named
   BENCH_<target>.json in the working directory (CI uploads them as
   artifacts and jq-validates the shape).  Emit owns the shared envelope
   (git revision, bench wall time, recommended domains, gate results)
   and the write-then-enforce discipline. *)
module Json = Octant_serve.Json

(* ------------------------------------------------------------------ *)
(* Figure 2 *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  banner "FIG2: latency vs distance calibration (paper Figure 2)";
  let deployment = Netsim.Deployment.make ~seed ~n_hosts () in
  let bridge = Eval.Bridge.create deployment in
  let n = Eval.Bridge.host_count bridge in
  let all = Array.init n Fun.id in
  let landmarks = Eval.Bridge.landmarks_for bridge ~exclude:(-1) all in
  let inter = Eval.Bridge.inter_rtt_for bridge all in
  let ctx = Octant.Pipeline.prepare ~landmarks ~inter_landmark_rtt_ms:inter () in
  (* The paper plots planetlab1.cs.rochester.edu; we use the first
     deployed host. *)
  let city = Netsim.Deployment.host_city deployment (Eval.Bridge.host_id bridge 0) in
  Printf.printf "# landmark 0: %s\n" city.Netsim.City.name;
  Eval.Report.print_figure2 (Octant.Pipeline.calibration ctx 0);
  (* Shape checks the paper's plot exhibits. *)
  let samples = Octant.Calibration.samples (Octant.Pipeline.calibration ctx 0) in
  let sol_violations =
    List.length
      (List.filter
         (fun s ->
           s.Octant.Calibration.distance_km
           > Geo.Geodesy.rtt_to_max_distance_km s.Octant.Calibration.latency_ms +. 1.0)
         samples)
  in
  Printf.printf "# shape check: %d samples, %d above the speed-of-light line (expect 0)\n"
    (List.length samples) sol_violations

(* ------------------------------------------------------------------ *)
(* Figure 3 *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  banner "FIG3: error CDF, Octant vs GeoLim vs GeoPing vs GeoTrack (paper Figure 3)";
  let study = Eval.Study.run ~seed ~n_hosts () in
  Eval.Report.print_figure3 study;
  let octant = Eval.Study.median_miles study.Eval.Study.octant in
  let geolim = Eval.Study.median_miles study.Eval.Study.geolim in
  let geoping = Eval.Study.median_miles study.Eval.Study.geoping in
  let geotrack = Eval.Study.median_miles study.Eval.Study.geotrack in
  let best_prior = Float.min geolim (Float.min geoping geotrack) in
  Printf.printf "# shape check: Octant median %.1f mi vs best prior %.1f mi -> factor %.1fx\n"
    octant best_prior
    (best_prior /. Float.max octant 0.1);
  Printf.printf "# (paper: 22 mi vs 68 mi -> factor 3.1x; Octant also has the shortest tail)\n";
  (* Extra row: GeoCluster/NetGeo-style pure-database localization over the
     same WHOIS registry (paper section 4 calls its granularity "very
     coarse"). *)
  let deployment = Netsim.Deployment.make ~seed ~n_hosts () in
  let bridge = Eval.Bridge.create deployment in
  let whois_reg = Netsim.Deployment.whois deployment in
  let fallback = (Netsim.City.find_exn "NYC").Netsim.City.location in
  let errs =
    Array.map
      (fun i ->
        let node = Eval.Bridge.host_id bridge i in
        let truth = Eval.Bridge.position bridge i in
        let r =
          Baselines.Geocluster.localize
            ~whois:(fun key ->
              Option.map
                (fun rec_ -> rec_.Netsim.Whois.city.Netsim.City.location)
                (Netsim.Whois.lookup whois_reg key))
            ~fallback ~target_key:node
        in
        Geo.Geodesy.miles_of_km (Geo.Geodesy.distance_km r.Baselines.Geocluster.point truth))
      (Array.init (Eval.Bridge.host_count bridge) Fun.id)
  in
  Printf.printf "GeoCluster median=%7.1f mi  p90=%7.1f  worst=%7.1f  (pure database, no probing)\n"
    (Stats.Sample.median errs)
    (Stats.Sample.percentile 90.0 errs)
    (Stats.Sample.max errs);
  Printf.printf
    "# (a correct registry record scores ~0 in the simulator because hosts sit\n\
     #  at city centers; the tail is what the paper means by \"very coarse\":\n\
     #  stale and missing records land thousands of miles away)\n";
  study

let timing study =
  banner "TIMING: per-target solution time (paper: \"a few seconds\")";
  Eval.Report.print_timing study

(* ------------------------------------------------------------------ *)
(* Batch engine *)
(* ------------------------------------------------------------------ *)

let batch () =
  banner "BATCH: multicore batch engine (Pipeline.localize_batch)";
  let bench_t0 = Emit.now () in
  let deployment = Netsim.Deployment.make ~seed ~n_hosts () in
  let bridge = Eval.Bridge.create deployment in
  let n = Eval.Bridge.host_count bridge in
  let n_lm = n / 2 in
  let lm_set = Array.init n_lm Fun.id in
  let landmarks = Eval.Bridge.landmarks_for bridge ~exclude:(-1) lm_set in
  let inter = Eval.Bridge.inter_rtt_for bridge lm_set in
  let n_targets = n - n_lm in
  (* Measurements are RNG-driven: collect them once, in target order, so
     every row below localizes the same observations. *)
  let obs =
    Octant.Parallel.seq_init n_targets (fun i ->
        Eval.Bridge.observations bridge ~landmark_indices:lm_set ~target:(n_lm + i))
  in
  Printf.printf "# %d fixed landmarks, %d targets, one prepared context per row\n" n_lm
    n_targets;
  Printf.printf "# Domain.recommended_domain_count = %d (speedup needs >1 physical core)\n%!"
    (Octant.Parallel.default_jobs ());
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let fresh_ctx () = Octant.Pipeline.prepare ~landmarks ~inter_landmark_rtt_ms:inter () in
  (* Estimates must be bit-identical across rows; solve_time_s is the one
     field excluded (it is a stopwatch reading, not a result). *)
  let same (a : Octant.Estimate.t) (b : Octant.Estimate.t) =
    a.Octant.Estimate.point = b.Octant.Estimate.point
    && a.Octant.Estimate.point_plane = b.Octant.Estimate.point_plane
    && a.Octant.Estimate.area_km2 = b.Octant.Estimate.area_km2
    && a.Octant.Estimate.top_weight = b.Octant.Estimate.top_weight
    && a.Octant.Estimate.cells_used = b.Octant.Estimate.cells_used
    && a.Octant.Estimate.constraints_used = b.Octant.Estimate.constraints_used
    && a.Octant.Estimate.target_height_ms = b.Octant.Estimate.target_height_ms
  in
  let same_result a b = match b with Ok b -> same a b | Error _ -> false in
  (* Row 1: telemetry disabled.  The instrumented pipeline must behave as
     if the instrumentation were not there: the no-op sink records nothing
     (asserted below) and costs one atomic load per site. *)
  Octant.Telemetry.disable ();
  Octant.Telemetry.reset ();
  let seq_ctx = fresh_ctx () in
  let seq, t_seq =
    wall (fun () -> Array.map (Octant.Pipeline.localize ~undns:Eval.Bridge.undns seq_ctx) obs)
  in
  let disabled_events = Octant.Telemetry.total_events (Octant.Telemetry.snapshot ()) in
  let hits, misses = Octant.Pipeline.geometry_cache_stats seq_ctx in
  Printf.printf
    "  %-24s %6.2fs   (geometry cache: %d hits, %d misses; telemetry off: %d events)\n%!"
    "sequential localize" t_seq hits misses disabled_events;
  (* Rows 2..: telemetry enabled, one fresh aggregate per jobs setting so
     the deterministic signatures are comparable. *)
  let signatures = ref [] in
  let last_snapshot = ref None in
  let json_rows = ref [] in
  List.iter
    (fun jobs ->
      Octant.Telemetry.reset ();
      Octant.Telemetry.enable ();
      let ctx = fresh_ctx () in
      let ests, t =
        wall (fun () -> Octant.Pipeline.localize_batch ~undns:Eval.Bridge.undns ~jobs ctx obs)
      in
      Octant.Telemetry.disable ();
      let snap = Octant.Telemetry.snapshot () in
      signatures := (jobs, Octant.Telemetry.deterministic_signature snap) :: !signatures;
      last_snapshot := Some snap;
      let identical = Array.for_all2 same_result seq ests in
      let gc_counter name =
        match
          List.find_opt
            (fun c -> c.Octant.Telemetry.c_domain = "gc" && c.Octant.Telemetry.c_name = name)
            snap.Octant.Telemetry.counters
        with
        | Some c -> c.Octant.Telemetry.c_value
        | None -> 0
      in
      let minor_words = gc_counter "minor_words" and major_words = gc_counter "major_words" in
      json_rows :=
        Json.Obj
          [
            ("jobs", Json.Num (float_of_int jobs));
            ("wall_s", Json.num t);
            ("targets_per_s", Json.num (float_of_int n_targets /. t));
            ("speedup", Json.num (t_seq /. t));
            ("identical", Json.Bool identical);
            ("gc_minor_words", Json.Num (float_of_int minor_words));
            ("gc_major_words", Json.Num (float_of_int major_words));
          ]
        :: !json_rows;
      Printf.printf
        "  localize_batch ~jobs:%-3d %6.2fs   identical: %s   speedup: %.2fx   \
         alloc: %.0fM minor words\n%!"
        jobs t
        (if identical then "yes" else "NO")
        (t_seq /. t)
        (float_of_int minor_words /. 1e6))
    [ 1; 4 ];
  (* Stage breakdown from the last (jobs=4) run: where the wall time went.
     Span totals sum CPU seconds across domains, so they exceed the wall
     clock by roughly the parallelism. *)
  (match !last_snapshot with
  | None -> ()
  | Some snap ->
      let counter d n =
        match
          List.find_opt
            (fun c -> c.Octant.Telemetry.c_domain = d && c.Octant.Telemetry.c_name = n)
            snap.Octant.Telemetry.counters
        with
        | Some c -> c.Octant.Telemetry.c_value
        | None -> 0
      in
      let span_total path =
        (* Exact path: a span's total already includes its children. *)
        List.fold_left
          (fun (n, s, w) (v : Octant.Telemetry.span_view) ->
            if v.Octant.Telemetry.s_path = path then
              ( n + v.Octant.Telemetry.s_count,
                s +. v.Octant.Telemetry.s_total_s,
                w + v.Octant.Telemetry.s_minor_words )
            else (n, s, w))
          (0, 0.0, 0) snap.Octant.Telemetry.spans
      in
      Printf.printf
        "  stage breakdown (jobs=4, CPU seconds and minor words summed across domains):\n";
      List.iter
        (fun (label, path) ->
          let n, s, w = span_total path in
          Printf.printf "    %-22s %8.2fs  x%-6d %8.0fM words\n" label s n
            (float_of_int w /. 1e6))
        [
          ("prepare_target", "localize/prepare_target");
          ("solver add", "localize/add_constraints");
          ("solver solve", "localize/solver.solve");
        ];
      Printf.printf
        "    clip ops: %d inter / %d diff (%d convex fast-path, %d retries, %d fallbacks)\n"
        (counter "clip" "inter") (counter "clip" "diff")
        (counter "clip" "convex_fast_path")
        (counter "clip" "degenerate_retries")
        (counter "clip" "degenerate_fallbacks");
      Printf.printf "    cache:    %d lookups, %d hits, %d misses\n" (counter "cache" "lookups")
        (counter "cache" "hits") (counter "cache" "misses");
      Printf.printf "    heights:  %d target fits, %d Nelder-Mead iterations\n"
        (counter "heights" "target_fits")
        (counter "heights" "fit_iterations");
      Printf.printf "    solver:   %d constraints, %d cells split, %d created, %d dropped\n"
        (counter "solver" "constraints_added")
        (counter "solver" "cells_split")
        (counter "solver" "cells_created")
        (counter "solver" "cells_dropped"));
  (* The determinism contract: every deterministic counter and span count
     identical across jobs settings. *)
  let sig1 = List.assoc 1 !signatures and sig4 = List.assoc 4 !signatures in
  Printf.printf "  deterministic counters jobs 1 vs 4: %s\n%!"
    (if sig1 = sig4 then "identical" else "DIVERGED");
  if sig1 <> sig4 then begin
    List.iter
      (fun (k, v) ->
        match List.assoc_opt k sig4 with
        | Some v' when v' = v -> ()
        | Some v' -> Printf.eprintf "  %s: jobs1=%d jobs4=%d\n" k v v'
        | None -> Printf.eprintf "  %s: jobs1=%d jobs4=absent\n" k v)
      sig1;
    List.iter
      (fun (k, v) ->
        if not (List.mem_assoc k sig1) then Printf.eprintf "  %s: jobs1=absent jobs4=%d\n" k v)
      sig4
  end;
  Emit.write ~bench:"batch" ~t0:bench_t0
    ~fields:
      [
        ("landmarks", Json.Num (float_of_int n_lm));
        ("targets", Json.Num (float_of_int n_targets));
        ("sequential_s", Json.num t_seq);
        ("deterministic_signature_match", Json.Bool (sig1 = sig4));
      ]
    ~gates:
      [
        Emit.gate "telemetry_noop" (disabled_events = 0)
          (Printf.sprintf "disabled telemetry recorded %d events (want 0)" disabled_events);
        Emit.gate "deterministic_signature_match" (sig1 = sig4)
          "deterministic counters and span counts identical across jobs settings";
      ]
    ~rows:(List.rev !json_rows) "BENCH_batch.json"

(* ------------------------------------------------------------------ *)
(* Region backends *)
(* ------------------------------------------------------------------ *)

(* The pluggable region backends on the batch workload: exact (the
   default), grid (raster), and hybrid (exact clips behind a bbox +
   occupancy-grid prefilter).  Tracks per-backend solve wall, the
   fraction of piece-pair clips the hybrid prefilter skips, and the
   accuracy cost relative to exact — the numbers that decide when each
   backend wins. *)
let region_bench () =
  banner "REGION: pluggable region backends (exact | grid | hybrid)";
  let bench_t0 = Emit.now () in
  let deployment = Netsim.Deployment.make ~seed ~n_hosts () in
  let bridge = Eval.Bridge.create deployment in
  let n = Eval.Bridge.host_count bridge in
  let n_lm = n / 2 in
  let lm_set = Array.init n_lm Fun.id in
  let landmarks = Eval.Bridge.landmarks_for bridge ~exclude:(-1) lm_set in
  let inter = Eval.Bridge.inter_rtt_for bridge lm_set in
  let n_targets = n - n_lm in
  let obs =
    Octant.Parallel.seq_init n_targets (fun i ->
        Eval.Bridge.observations bridge ~landmark_indices:lm_set ~target:(n_lm + i))
  in
  let truths = Array.init n_targets (fun i -> Eval.Bridge.position bridge (n_lm + i)) in
  Printf.printf "# %d fixed landmarks, %d targets, jobs=1 per row\n%!" n_lm n_targets;
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let run spec =
    Geo.Region_backend.reset_hybrid_stats ();
    let config = { Octant.Pipeline.default_config with Octant.Pipeline.backend = spec } in
    let ctx = Octant.Pipeline.prepare ~config ~landmarks ~inter_landmark_rtt_ms:inter () in
    let ests, t =
      wall (fun () -> Octant.Pipeline.localize_batch ~undns:Eval.Bridge.undns ~jobs:1 ctx obs)
    in
    (ests, t, Geo.Region_backend.hybrid_stats ())
  in
  let specs =
    [
      Geo.Region_backend.Exact;
      Geo.Region_backend.Grid { resolution = Geo.Region_backend.default_grid_resolution };
      Geo.Region_backend.Hybrid { cells = Geo.Region_backend.default_hybrid_cells };
    ]
  in
  let rows =
    List.map
      (fun spec ->
        let ests, t, stats = run spec in
        (spec, ests, t, stats))
      specs
  in
  let errors ests =
    let errs = ref [] in
    Array.iteri
      (fun i est ->
        match est with
        | Ok est -> errs := Octant.Estimate.error_miles est truths.(i) :: !errs
        | Error _ -> ())
      ests;
    Array.of_list (List.rev !errs)
  in
  let areas ests =
    Array.map
      (function Ok est -> est.Octant.Estimate.area_km2 | Error _ -> Float.nan)
      ests
  in
  let covered ests =
    Array.to_list (Array.mapi (fun i est -> (i, est)) ests)
    |> List.filter (fun (i, est) ->
           match est with Ok est -> Octant.Estimate.covers est truths.(i) | Error _ -> false)
    |> List.length
  in
  let exact_ests, _, _ =
    match rows with (_, e, t, s) :: _ -> (e, t, s) | [] -> assert false
  in
  let exact_median = Stats.Sample.median (errors exact_ests) in
  let exact_areas = areas exact_ests in
  let json_rows = ref [] in
  let hybrid_skip_ratio = ref 0.0 and hybrid_err_pct = ref infinity in
  List.iter
    (fun (spec, ests, t, (stats : Geo.Region_backend.hybrid_stats)) ->
      let name = Geo.Region_backend.spec_to_string spec in
      let errs = errors ests in
      let med = Stats.Sample.median errs in
      let med_vs_exact_pct =
        if exact_median > 0.0 then 100.0 *. Float.abs (med -. exact_median) /. exact_median
        else 0.0
      in
      let ar = areas ests in
      let area_err_pct, area_cmp_n =
        let acc = ref 0.0 and cnt = ref 0 in
        Array.iteri
          (fun i a ->
            let e = exact_areas.(i) in
            if Float.is_finite a && Float.is_finite e then begin
              incr cnt;
              acc := !acc +. (100.0 *. Float.abs (a -. e) /. Float.max e 1.0)
            end)
          ar;
        ((if !cnt = 0 then 0.0 else !acc /. float_of_int !cnt), !cnt)
      in
      let mean_area =
        let finite = Array.to_list ar |> List.filter Float.is_finite in
        List.fold_left ( +. ) 0.0 finite /. float_of_int (Stdlib.max 1 (List.length finite))
      in
      let cov = covered ests in
      let pairs = stats.exact_clips + stats.skipped_bbox + stats.skipped_grid in
      let skip_ratio =
        if pairs = 0 then 0.0
        else float_of_int (stats.skipped_bbox + stats.skipped_grid) /. float_of_int pairs
      in
      if name = "hybrid" then begin
        hybrid_skip_ratio := skip_ratio;
        hybrid_err_pct := med_vs_exact_pct
      end;
      Printf.printf
        "  %-8s %6.2fs (%5.1f targets/s)  median %6.1f mi (vs exact %+5.1f%%)  mean area \
         %9.0f km2 (err %5.1f%%)  covers %d/%d\n%!"
        name t
        (float_of_int n_targets /. t)
        med med_vs_exact_pct mean_area area_err_pct cov n_targets;
      if pairs > 0 then
        Printf.printf
        "           prefilter: %d pairs, %d clipped, %d bbox-skipped, %d grid-skipped \
         (%.0f%% skipped)\n%!"
          pairs stats.exact_clips stats.skipped_bbox stats.skipped_grid (100.0 *. skip_ratio);
      json_rows :=
        Json.Obj
          [
            ("backend", Json.Str name);
            ("wall_s", Json.num t);
            ("targets_per_s", Json.num (float_of_int n_targets /. t));
            ("median_error_miles", Json.num med);
            ("median_error_vs_exact_pct", Json.num med_vs_exact_pct);
            ("mean_area_km2", Json.num mean_area);
            ("mean_area_err_vs_exact_pct", Json.num area_err_pct);
            ("area_compared_targets", Json.Num (float_of_int area_cmp_n));
            ("covered", Json.Num (float_of_int cov));
            ("clip_pairs", Json.Num (float_of_int pairs));
            ("clips_exact", Json.Num (float_of_int stats.exact_clips));
            ("skipped_bbox", Json.Num (float_of_int stats.skipped_bbox));
            ("skipped_grid", Json.Num (float_of_int stats.skipped_grid));
            ("skip_ratio", Json.num skip_ratio);
          ]
        :: !json_rows)
    rows;
  (* The hybrid backend earns its keep only if the prefilter actually
     fires and the answer stays close to exact; fail loudly otherwise so
     CI catches a regressed prefilter. *)
  Emit.write ~bench:"region" ~t0:bench_t0
    ~fields:
      [
        ("landmarks", Json.Num (float_of_int n_lm));
        ("targets", Json.Num (float_of_int n_targets));
        ("hybrid_skip_ratio", Json.num !hybrid_skip_ratio);
        ("hybrid_median_error_vs_exact_pct", Json.num !hybrid_err_pct);
      ]
    ~gates:
      [
        Emit.gate "hybrid_skip_ratio" (!hybrid_skip_ratio >= 0.30)
          (Printf.sprintf "hybrid prefilter skipped %.0f%% of clip pairs (want >= 30%%)"
             (100.0 *. !hybrid_skip_ratio));
        Emit.gate "hybrid_error_vs_exact" (!hybrid_err_pct <= 5.0)
          (Printf.sprintf "hybrid median error %.1f%% away from exact (want within 5%%)"
             !hybrid_err_pct);
      ]
    ~rows:(List.rev !json_rows) "BENCH_region.json"

(* ------------------------------------------------------------------ *)
(* Geometry kernels *)
(* ------------------------------------------------------------------ *)

(* Throughput and allocation of the clip kernels, the production buffer
   implementation against the list-based reference kept under
   test/geom_reference.  Both produce bit-identical polygons (the
   clip-equivalence property suite asserts it); the only difference is the
   allocation discipline, which is exactly what this target tracks: the
   words-per-op ratio is the regression guard for the multicore batch
   engine, whose scaling dies by minor-GC stop-the-world when the kernels
   start consing again. *)
let geom () =
  banner "GEOM: clip kernel throughput and allocation, buffer vs list-based reference";
  let bench_t0 = Emit.now () in
  let segments = 48 in
  let n_items = 120 in
  let reps = 3 in
  let rng = Stats.Rng.create 23 in
  (* The pipeline's actual shape population: 48-segment disks and annuli
     (convex fast path and Greiner-Hormann general path respectively). *)
  let mk_pieces () =
    let center =
      Geo.Point.make
        (Stats.Rng.uniform rng (-250.0) 250.0)
        (Stats.Rng.uniform rng (-250.0) 250.0)
    in
    if Stats.Rng.bool rng then
      Geo.Region.pieces
        (Geo.Region.disk ~segments ~center ~radius:(Stats.Rng.uniform rng 150.0 450.0) ())
    else begin
      let r_inner = Stats.Rng.uniform rng 80.0 250.0 in
      Geo.Region.pieces
        (Geo.Region.annulus ~segments ~center ~r_inner
           ~r_outer:(r_inner +. Stats.Rng.uniform rng 80.0 250.0)
           ())
    end
  in
  let pairs = Array.init n_items (fun _ -> (mk_pieces (), mk_pieces ())) in
  (* Raw rings with a closing repeat, for the tessellation (of_points +
     dedup) row. *)
  let rings =
    Array.init n_items (fun _ ->
        let r = Stats.Rng.uniform rng 100.0 400.0 in
        let cx = Stats.Rng.uniform rng (-250.0) 250.0 in
        let cy = Stats.Rng.uniform rng (-250.0) 250.0 in
        Array.init (segments + 1) (fun i ->
            let i = i mod segments in
            let th = 2.0 *. Float.pi *. float_of_int i /. float_of_int segments in
            Geo.Point.make (cx +. (r *. cos th)) (cy +. (r *. sin th))))
  in
  (* Region-level combinators over the polygon kernels, identical in shape
     to the reference's pieces_* helpers so the two sides do the same
     polygon-level work. *)
  let module Ref = Geom_reference.Clip_reference in
  let opt_diff a b =
    let subtract_all p =
      List.fold_left (fun frags q -> List.concat_map (fun f -> Geo.Clip.diff f q) frags) [ p ] b
    in
    List.concat_map subtract_all a
  in
  let ops =
    [
      ( "tessellate",
        (fun i -> ignore (Geo.Polygon.of_points rings.(i))),
        fun i -> ignore (Ref.of_points_ref rings.(i)) );
      ( "inter",
        (fun i ->
          let a, b = pairs.(i) in
          ignore (List.concat_map (fun p -> List.concat_map (Geo.Clip.inter p) b) a)),
        fun i ->
          let a, b = pairs.(i) in
          ignore (Ref.pieces_inter a b) );
      ( "diff",
        (fun i ->
          let a, b = pairs.(i) in
          ignore (opt_diff a b)),
        fun i ->
          let a, b = pairs.(i) in
          ignore (Ref.pieces_diff a b) );
      ( "union",
        (fun i ->
          let a, b = pairs.(i) in
          ignore (a @ opt_diff b a)),
        fun i ->
          let a, b = pairs.(i) in
          ignore (Ref.pieces_union a b) );
    ]
  in
  let counter snap d n =
    match
      List.find_opt
        (fun c -> c.Octant.Telemetry.c_domain = d && c.Octant.Telemetry.c_name = n)
        snap.Octant.Telemetry.counters
    with
    | Some c -> c.Octant.Telemetry.c_value
    | None -> 0
  in
  (* One measurement: [reps * n_items] ops through the domain pool, worker
     allocation summed across domains by the pool's gc.* counters. *)
  let measure ~jobs f =
    Octant.Telemetry.reset ();
    Octant.Telemetry.enable ();
    let total = reps * n_items in
    let t0 = Unix.gettimeofday () in
    ignore (Octant.Parallel.init ~jobs total (fun i -> f (i mod n_items)));
    let wall = Unix.gettimeofday () -. t0 in
    Octant.Telemetry.disable ();
    let snap = Octant.Telemetry.snapshot () in
    let per_op c = float_of_int c /. float_of_int total in
    ( float_of_int total /. wall,
      wall,
      per_op (counter snap "gc" "minor_words"),
      per_op (counter snap "gc" "major_words") )
  in
  Printf.printf "# %d shape pairs x %d reps, %d-segment disks/annuli\n" n_items reps segments;
  Printf.printf "# %-12s %-10s %-5s %12s %16s %16s\n" "op" "kernel" "jobs" "ops/s"
    "minor-words/op" "major-words/op";
  let rows = ref [] in
  let reductions = ref [] in
  List.iter
    (fun (name, opt, reference) ->
      let opt_minor_j1 = ref 0.0 and ref_minor_j1 = ref 0.0 in
      List.iter
        (fun (kernel, f) ->
          List.iter
            (fun jobs ->
              let ops_per_s, wall, minor, major = measure ~jobs f in
              if jobs = 1 then
                if kernel = "buffer" then opt_minor_j1 := minor else ref_minor_j1 := minor;
              Printf.printf "  %-12s %-10s %-5d %12.0f %16.1f %16.1f\n%!" name kernel jobs
                ops_per_s minor major;
              rows :=
                Json.Obj
                  [
                    ("op", Json.Str name);
                    ("kernel", Json.Str kernel);
                    ("jobs", Json.Num (float_of_int jobs));
                    ("wall_s", Json.num wall);
                    ("ops_per_s", Json.num ops_per_s);
                    ("minor_words_per_op", Json.num minor);
                    ("major_words_per_op", Json.num major);
                  ]
                :: !rows)
            [ 1; 4 ])
        [ ("buffer", opt); ("reference", reference) ];
      let reduction = !ref_minor_j1 /. Float.max !opt_minor_j1 1e-9 in
      Printf.printf "  %-12s allocation reduction (reference/buffer, jobs=1): %.1fx\n%!" name
        reduction;
      reductions := (name, reduction) :: !reductions)
    ops;
  let min_reduction =
    List.fold_left (fun acc (_, r) -> Float.min acc r) infinity !reductions
  in
  Printf.printf "  minimum allocation reduction across ops: %.1fx (acceptance: >= 5x)\n%!"
    min_reduction;
  Emit.write ~bench:"geom" ~t0:bench_t0
    ~fields:
      [
        ("segments", Json.Num (float_of_int segments));
        ("pairs", Json.Num (float_of_int n_items));
        ("reps", Json.Num (float_of_int reps));
        ( "alloc_reduction",
          Json.Obj (List.rev_map (fun (n, r) -> (n, Json.num r)) !reductions) );
        ("min_alloc_reduction", Json.num min_reduction);
      ]
    ~gates:
      [
        Emit.gate "min_alloc_reduction" (min_reduction >= 5.0)
          (Printf.sprintf
             "minimum allocation reduction across ops %.1fx (acceptance: >= 5x)" min_reduction);
      ]
    ~rows:(List.rev !rows) "BENCH_geom.json"

(* ------------------------------------------------------------------ *)
(* Serving layer *)
(* ------------------------------------------------------------------ *)

let bench_write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

let bench_read_exactly fd buf n =
  let off = ref 0 in
  while !off < n do
    let k = Unix.read fd buf !off (n - !off) in
    if k = 0 then failwith "server closed mid-bench";
    off := !off + k
  done

let serve_bench () =
  banner "SERVE: localization daemon (Octant_serve) over loopback TCP";
  let bench_t0 = Emit.now () in
  let deployment = Netsim.Deployment.make ~seed ~n_hosts () in
  let bridge = Eval.Bridge.create deployment in
  let n = Eval.Bridge.host_count bridge in
  let n_lm = n / 2 in
  let lm_set = Array.init n_lm Fun.id in
  let landmarks = Eval.Bridge.landmarks_for bridge ~exclude:(-1) lm_set in
  let inter = Eval.Bridge.inter_rtt_for bridge lm_set in
  let n_targets = n - n_lm in
  let observations =
    Array.init n_targets (fun i ->
        Eval.Bridge.observations bridge ~landmark_indices:lm_set ~target:(n_lm + i))
  in
  (* The same request per target in both codecs (identical float bits). *)
  let json_requests =
    Array.mapi
      (fun i obs ->
        Json.to_string
          (Json.Obj
             [
               ("id", Json.Num (float_of_int i));
               ( "rtt_ms",
                 Json.List
                   (Array.to_list (Array.map Json.num obs.Octant.Pipeline.target_rtt_ms)) );
             ])
        ^ "\n")
      observations
  in
  let bin_requests =
    Array.mapi
      (fun i obs ->
        Octant_serve.Protocol.Binary.frame
          (Octant_serve.Protocol.Binary.encode_request
             (Octant_serve.Protocol.Localize
                {
                  Octant_serve.Protocol.id = Json.Num (float_of_int i);
                  rtt_ms = obs.Octant.Pipeline.target_rtt_ms;
                  whois = None;
                  deadline_ms = None;
                  want_audit = false;
                })))
      observations
  in
  let ctx = Octant.Pipeline.prepare ~landmarks ~inter_landmark_rtt_ms:inter () in
  let n_clients = 4 in
  Printf.printf "# %d landmarks, %d distinct requests, %d clients\n%!" n_lm n_targets n_clients;
  let rows = ref [] in
  (* Gate inputs, mirrored by CI's jq re-validation of the snapshot. *)
  let wire_rps = Hashtbl.create 4 in
  let min_wire_hit_rate = ref infinity in
  (* One measured configuration of the daemon.

     [workload]: ["solve"] replays the committed-baseline shape — two
     passes over the distinct requests, so pass 1 pays the solver and
     pass 2 hits the cache; ["wire"] warms the cache untimed, then times
     hot passes only — pure serving-stack throughput (event loop, codec,
     sharded cache), no solver in the measured window. *)
  let run_case ~workload ~codec ~jobs ~shards ~timed_passes ~warm =
    let config =
      {
        Octant_serve.Server.default_config with
        Octant_serve.Server.jobs = Some jobs;
        batch_delay_s = 0.002;
        cache_capacity = 1024;
        cache_shards = shards;
      }
    in
    Octant.Telemetry.reset ();
    Octant.Telemetry.enable ();
    let srv = Octant_serve.Server.start ~config ~ctx () in
    let port = Octant_serve.Server.port srv in
    let requests = match codec with `Json -> json_requests | `Binary -> bin_requests in
    let connect () =
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.setsockopt fd Unix.TCP_NODELAY true;
      (match codec with
      | `Binary -> bench_write_all fd Octant_serve.Protocol.Binary.magic
      | `Json -> ());
      fd
    in
    let reply_reader fd =
      match codec with
      | `Json ->
          let ic = Unix.in_channel_of_descr fd in
          fun () ->
            (match input_line ic with
            | _reply -> ()
            | exception End_of_file -> failwith "server closed mid-bench")
      | `Binary ->
          let hdr = Bytes.create Octant_serve.Protocol.Binary.header_length in
          let payload = Bytes.create 65536 in
          fun () ->
            bench_read_exactly fd hdr Octant_serve.Protocol.Binary.header_length;
            let len = Octant_serve.Protocol.Binary.decode_length (Bytes.to_string hdr) in
            if len > Bytes.length payload then
              failwith (Printf.sprintf "implausible binary reply length %d (desynced?)" len);
            bench_read_exactly fd payload len
    in
    if warm then begin
      (* Untimed warm pass: fill the cache so the measured window is
         all serving stack, no solver. *)
      let fd = connect () in
      let read_reply = reply_reader fd in
      Array.iter
        (fun req ->
          bench_write_all fd req;
          read_reply ())
        requests;
      Unix.close fd
    end;
    let latencies = Array.make n_clients [] in
    let client c () =
      let fd = connect () in
      let read_reply = reply_reader fd in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          for _pass = 1 to timed_passes do
            Array.iteri
              (fun i req ->
                if i mod n_clients = c then begin
                  let t0 = Unix.gettimeofday () in
                  bench_write_all fd req;
                  read_reply ();
                  latencies.(c) <- (Unix.gettimeofday () -. t0) :: latencies.(c)
                end)
              requests
          done)
    in
    let t0 = Unix.gettimeofday () in
    let threads = Array.init n_clients (fun c -> Thread.create (client c) ()) in
    Array.iter Thread.join threads;
    let wall = Unix.gettimeofday () -. t0 in
    let cache = Octant_serve.Server.cache_stats srv in
    Octant_serve.Server.stop srv;
    Octant.Telemetry.disable ();
    let gc_counter name =
      let snap = Octant.Telemetry.snapshot () in
      match
        List.find_opt
          (fun c -> c.Octant.Telemetry.c_domain = "gc" && c.Octant.Telemetry.c_name = name)
          snap.Octant.Telemetry.counters
      with
      | Some c -> c.Octant.Telemetry.c_value
      | None -> 0
    in
    let minor_words = gc_counter "minor_words" in
    let major_words = gc_counter "major_words" in
    let lat_ms =
      Array.of_list
        (List.concat_map (fun l -> List.map (fun s -> 1000.0 *. s) l) (Array.to_list latencies))
    in
    let total = Array.length lat_ms in
    let p50 = Stats.Sample.percentile 50.0 lat_ms in
    let p99 = Stats.Sample.percentile 99.0 lat_ms in
    let rps = float_of_int total /. wall in
    let hit_rate =
      let lookups = cache.Octant_serve.Lru.hits + cache.Octant_serve.Lru.misses in
      if lookups = 0 then 0.0
      else float_of_int cache.Octant_serve.Lru.hits /. float_of_int lookups
    in
    let codec_name = match codec with `Json -> "json" | `Binary -> "binary" in
    if workload = "wire" then begin
      if jobs = 1 && shards = 8 then Hashtbl.replace wire_rps codec_name rps;
      min_wire_hit_rate := Float.min !min_wire_hit_rate hit_rate
    end;
    Printf.printf
      "  %-5s %-6s jobs=%d shards=%-2d %5d requests in %6.2fs  %8.1f req/s   p50=%6.2f ms  \
       p99=%6.2f ms  hit rate %.0f%%\n%!"
      workload codec_name jobs shards total wall rps p50 p99 (100.0 *. hit_rate);
    rows :=
      Json.Obj
        [
          ("workload", Json.Str workload);
          ("codec", Json.Str codec_name);
          ("jobs", Json.Num (float_of_int jobs));
          ("shards", Json.Num (float_of_int shards));
          ("requests", Json.Num (float_of_int total));
          ("wall_s", Json.num wall);
          ("requests_per_s", Json.num rps);
          ("p50_ms", Json.num p50);
          ("p99_ms", Json.num p99);
          ("cache_hits", Json.Num (float_of_int cache.Octant_serve.Lru.hits));
          ("cache_misses", Json.Num (float_of_int cache.Octant_serve.Lru.misses));
          ("cache_hit_rate", Json.num hit_rate);
          ("gc_minor_words", Json.Num (float_of_int minor_words));
          ("gc_major_words", Json.Num (float_of_int major_words));
        ]
      :: !rows
  in
  (* Baseline-shaped rows: the committed snapshot's workload (pass 1
     solves, pass 2 cache hits) — the CI floor compares jobs=1 here
     against the pre-event-loop snapshot. *)
  Printf.printf "# solve workload: 2 passes, pass 1 pays the solver (baseline shape)\n%!";
  List.iter
    (fun jobs -> run_case ~workload:"solve" ~codec:`Json ~jobs ~shards:8 ~timed_passes:2 ~warm:false)
    [ 1; 4 ];
  (* Hot rows: frames-per-codec and shard-count sweeps with the solver
     out of the measured window. *)
  Printf.printf "# wire workload: warmed cache, hot passes only (serving stack)\n%!";
  List.iter
    (fun (codec, shards) ->
      run_case ~workload:"wire" ~codec ~jobs:1 ~shards ~timed_passes:20 ~warm:true)
    [ (`Json, 1); (`Json, 8); (`Binary, 1); (`Binary, 8) ];
  let wire_rate codec = Option.value ~default:0.0 (Hashtbl.find_opt wire_rps codec) in
  Emit.write ~bench:"serve" ~t0:bench_t0
    ~fields:
      [
        ("landmarks", Json.Num (float_of_int n_lm));
        ("distinct_requests", Json.Num (float_of_int n_targets));
        ("clients", Json.Num (float_of_int n_clients));
      ]
    ~gates:
      [
        Emit.gate "wire_json_rps" (wire_rate "json" >= 100.0)
          (Printf.sprintf "hot json jobs=1 shards=8 row at %.1f req/s (want >= 100)"
             (wire_rate "json"));
        Emit.gate "wire_binary_rps" (wire_rate "binary" >= 100.0)
          (Printf.sprintf "hot binary jobs=1 shards=8 row at %.1f req/s (want >= 100)"
             (wire_rate "binary"));
        Emit.gate "wire_cache_hit_rate" (!min_wire_hit_rate >= 0.9)
          (Printf.sprintf "lowest wire-workload cache hit rate %.2f (want >= 0.9)"
             !min_wire_hit_rate);
      ]
    ~rows:(List.rev !rows) "BENCH_serve.json"

(* ------------------------------------------------------------------ *)
(* Planet substrate + sharded serving *)
(* ------------------------------------------------------------------ *)

(* Two sections.  The substrate section streams every target of a
   planet-scale world (O(10k) routers, O(1k) landmarks, O(100k) targets)
   and gates on flat heap growth — targets are pure functions of
   seed * index, so streaming must not accumulate state — plus
   streamed-vs-eager bit parity on a small world.

   The serving section measures the octant_shard front over 1, 2, and 4
   octant_served backends on a hot-cache wire workload whose distinct
   request set exceeds one backend's LRU capacity.  On a single-core
   runner the scaling win comes from aggregate cache capacity, not
   parallelism: one backend thrashes its LRU (every request pays the
   solver), while the consistent-hash split gives each of two backends a
   key range that fits, so the measured window is pure serving stack.
   The 2-backend row must clear [shard_min_scaling_2x] times the
   1-backend row; CI re-validates the committed snapshot with jq. *)
let shard_min_scaling_2x = 1.6

let shard_bench () =
  banner "SHARD: planet substrate streaming + consistent-hash fan-out (octant_shard)";
  let bench_t0 = Emit.now () in
  (* --- Substrate section ------------------------------------------- *)
  let world = Netsim.Planet.create ~seed () in
  let p = Netsim.Planet.params world in
  let create_s = Emit.now () -. bench_t0 in
  Printf.printf "# planet world: %d routers, %d landmarks, %d streamable targets (%.2fs)\n%!"
    p.Netsim.Planet.n_routers p.Netsim.Planet.n_landmarks p.Netsim.Planet.n_targets create_s;
  (* Flat memory is judged on live words, not chunk sizes: heap_words is
     the major heap's high-water mark and (on runtimes where compaction
     is a no-op) pool slack from transient per-target allocations would
     read as "growth" even though the stream retains nothing. *)
  Gc.compact ();
  let heap_before = (Gc.stat ()).Gc.live_words in
  let t0 = Emit.now () in
  let checksum =
    Netsim.Planet.fold_targets world ~init:0.0 ~f:(fun acc _target rtts ->
        acc +. rtts.(0) +. rtts.(Array.length rtts - 1))
  in
  let stream_s = Emit.now () -. t0 in
  Gc.compact ();
  let heap_after = (Gc.stat ()).Gc.live_words in
  let heap_growth = float_of_int heap_after /. float_of_int (Stdlib.max 1 heap_before) in
  let targets_per_s = float_of_int p.Netsim.Planet.n_targets /. stream_s in
  Printf.printf
    "  streamed %d targets x %d landmarks in %6.2fs (%8.0f targets/s)  checksum %.3f\n%!"
    p.Netsim.Planet.n_targets p.Netsim.Planet.n_landmarks stream_s targets_per_s checksum;
  Printf.printf "  live heap: %d -> %d words across the stream (growth %.3fx)\n%!" heap_before
    heap_after heap_growth;
  (* Streamed-vs-eager parity on a world small enough to materialize:
     shuffled lazy access must reproduce the eager tables bit for bit. *)
  let small =
    Netsim.Planet.create
      ~params:
        {
          Netsim.Planet.default_params with
          Netsim.Planet.n_routers = 200;
          n_landmarks = 16;
          n_targets = 300;
        }
      ~seed ()
  in
  let eager_targets, eager_rtts = Netsim.Planet.eager small in
  let order = Array.init (Array.length eager_targets) Fun.id in
  let rng = Stats.Rng.create 99 in
  for i = Array.length order - 1 downto 1 do
    let j = Stats.Rng.int rng (i + 1) in
    let tmp = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- tmp
  done;
  let stream_parity =
    Array.for_all
      (fun i ->
        let tgt = Netsim.Planet.target small i in
        tgt = eager_targets.(i) && Netsim.Planet.rtt_vector small tgt = eager_rtts.(i))
      order
  in
  Printf.printf "  streamed vs eager on a 300-target world (shuffled access): %s\n%!"
    (if stream_parity then "bit-identical" else "DIVERGED");
  (* --- Serving section --------------------------------------------- *)
  let n_landmarks_ctx = 32 in
  let ctx = Eval.Planet_bridge.prepare ~count:n_landmarks_ctx world in
  let n_requests = 320 in
  let cache_capacity = 256 in
  let bin_requests =
    Array.init n_requests (fun i ->
        let obs =
          Eval.Planet_bridge.observations ~count:n_landmarks_ctx world
            (Netsim.Planet.target world i)
        in
        Octant_serve.Protocol.Binary.frame
          (Octant_serve.Protocol.Binary.encode_request
             (Octant_serve.Protocol.Localize
                {
                  Octant_serve.Protocol.id = Json.Num (float_of_int i);
                  rtt_ms = obs.Octant.Pipeline.target_rtt_ms;
                  whois = None;
                  deadline_ms = None;
                  want_audit = false;
                })))
  in
  let n_clients = 4 in
  Printf.printf
    "# front + N in-process backends; %d distinct requests vs %d-entry backend caches, %d \
     binary clients\n\
     # (one backend's LRU thrashes; two backends' aggregate capacity fits the key space)\n%!"
    n_requests cache_capacity n_clients;
  let connect port =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.setsockopt fd Unix.TCP_NODELAY true;
    bench_write_all fd Octant_serve.Protocol.Binary.magic;
    fd
  in
  let reply_reader fd =
    let hdr = Bytes.create Octant_serve.Protocol.Binary.header_length in
    let payload = Bytes.create 65536 in
    fun () ->
      bench_read_exactly fd hdr Octant_serve.Protocol.Binary.header_length;
      let len = Octant_serve.Protocol.Binary.decode_length (Bytes.to_string hdr) in
      if len > Bytes.length payload then
        failwith (Printf.sprintf "implausible binary reply length %d (desynced?)" len);
      bench_read_exactly fd payload len
  in
  let rows = ref [] in
  let rps_by_backends = Hashtbl.create 4 in
  let run_row n_backends =
    let servers =
      List.init n_backends (fun _ ->
          Octant_serve.Server.start
            ~config:
              {
                Octant_serve.Server.default_config with
                Octant_serve.Server.jobs = Some 1;
                batch_delay_s = 0.0005;
                cache_capacity;
                cache_shards = 8;
              }
            ~ctx ())
    in
    let backend_addrs =
      List.map (fun srv -> ("127.0.0.1", Octant_serve.Server.port srv)) servers
    in
    let front_config backends =
      { Octant_serve.Shard.default_config with Octant_serve.Shard.backends }
    in
    (* Warm through a throwaway front so backend caches hold their key
       range, then measure through a fresh front whose latency
       histograms see only the hot window.  Both fronts route on the
       same ring (same backend names), so the split is identical. *)
    let warm_front = Octant_serve.Shard.start ~config:(front_config backend_addrs) () in
    let fd = connect (Octant_serve.Shard.port warm_front) in
    let read_reply = reply_reader fd in
    Array.iter
      (fun req ->
        bench_write_all fd req;
        read_reply ())
      bin_requests;
    Unix.close fd;
    Octant_serve.Shard.stop warm_front;
    let cache_base =
      List.map
        (fun srv ->
          let s = Octant_serve.Server.cache_stats srv in
          (s.Octant_serve.Lru.hits, s.Octant_serve.Lru.misses))
        servers
    in
    let front = Octant_serve.Shard.start ~config:(front_config backend_addrs) () in
    let port = Octant_serve.Shard.port front in
    let timed_passes = if n_backends = 1 then 2 else 12 in
    let latencies = Array.make n_clients [] in
    let client c () =
      let fd = connect port in
      let read_reply = reply_reader fd in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          for _pass = 1 to timed_passes do
            Array.iteri
              (fun i req ->
                if i mod n_clients = c then begin
                  let t0 = Unix.gettimeofday () in
                  bench_write_all fd req;
                  read_reply ();
                  latencies.(c) <- (Unix.gettimeofday () -. t0) :: latencies.(c)
                end)
              bin_requests
          done)
    in
    let t0 = Unix.gettimeofday () in
    let threads = Array.init n_clients (fun c -> Thread.create (client c) ()) in
    Array.iter Thread.join threads;
    let wall = Unix.gettimeofday () -. t0 in
    let shard_stats = Octant_serve.Shard.backend_stats front in
    Octant_serve.Shard.stop front;
    let hits, misses =
      List.fold_left2
        (fun (h, m) srv (h0, m0) ->
          let s = Octant_serve.Server.cache_stats srv in
          (h + s.Octant_serve.Lru.hits - h0, m + s.Octant_serve.Lru.misses - m0))
        (0, 0) servers cache_base
    in
    List.iter Octant_serve.Server.stop servers;
    let hit_rate =
      if hits + misses = 0 then 0.0 else float_of_int hits /. float_of_int (hits + misses)
    in
    let lat_ms =
      Array.of_list
        (List.concat_map (fun l -> List.map (fun s -> 1000.0 *. s) l) (Array.to_list latencies))
    in
    let total = Array.length lat_ms in
    let rps = float_of_int total /. wall in
    let p50 = Stats.Sample.percentile 50.0 lat_ms in
    let p99 = Stats.Sample.percentile 99.0 lat_ms in
    let max_shard_p99 =
      List.fold_left
        (fun acc (bs : Octant_serve.Shard.backend_stat) ->
          if Float.is_nan bs.Octant_serve.Shard.bs_p99_ms then acc
          else Float.max acc bs.Octant_serve.Shard.bs_p99_ms)
        0.0 shard_stats
    in
    Hashtbl.replace rps_by_backends n_backends rps;
    Printf.printf
      "  backends=%d %5d requests in %6.2fs  %8.1f req/s   p50=%6.2f ms  p99=%6.2f ms  \
       max shard p99=%6.2f ms  hit rate %.0f%%\n%!"
      n_backends total wall rps p50 p99 max_shard_p99 (100.0 *. hit_rate);
    List.iter
      (fun (bs : Octant_serve.Shard.backend_stat) ->
        Printf.printf "    %-22s sent %5d  replies %5d  p50=%6.2f ms  p99=%6.2f ms\n%!"
          bs.Octant_serve.Shard.bs_name bs.Octant_serve.Shard.bs_sent
          bs.Octant_serve.Shard.bs_replies bs.Octant_serve.Shard.bs_p50_ms
          bs.Octant_serve.Shard.bs_p99_ms)
      shard_stats;
    rows :=
      Json.Obj
        [
          ("backends", Json.Num (float_of_int n_backends));
          ("requests", Json.Num (float_of_int total));
          ("wall_s", Json.num wall);
          ("requests_per_s", Json.num rps);
          ("p50_ms", Json.num p50);
          ("p99_ms", Json.num p99);
          ("max_shard_p99_ms", Json.num max_shard_p99);
          ("cache_hits", Json.Num (float_of_int hits));
          ("cache_misses", Json.Num (float_of_int misses));
          ("cache_hit_rate", Json.num hit_rate);
          ( "shards",
            Json.List
              (List.map
                 (fun (bs : Octant_serve.Shard.backend_stat) ->
                   Json.Obj
                     [
                       ("name", Json.Str bs.Octant_serve.Shard.bs_name);
                       ("sent", Json.Num (float_of_int bs.Octant_serve.Shard.bs_sent));
                       ("replies", Json.Num (float_of_int bs.Octant_serve.Shard.bs_replies));
                       ("p50_ms", Json.num bs.Octant_serve.Shard.bs_p50_ms);
                       ("p99_ms", Json.num bs.Octant_serve.Shard.bs_p99_ms);
                     ])
                 shard_stats) );
        ]
      :: !rows
  in
  List.iter run_row [ 1; 2; 4 ];
  let rps n = Option.value ~default:0.0 (Hashtbl.find_opt rps_by_backends n) in
  let scaling_2x = rps 2 /. Float.max (rps 1) 1e-9 in
  Printf.printf "# gates: 2-backend throughput %.2fx the 1-backend row (want >= %.1fx)\n%!"
    scaling_2x shard_min_scaling_2x;
  Emit.write ~bench:"shard" ~t0:bench_t0
    ~fields:
      [
        ( "substrate",
          Json.Obj
            [
              ("routers", Json.Num (float_of_int p.Netsim.Planet.n_routers));
              ("landmarks", Json.Num (float_of_int p.Netsim.Planet.n_landmarks));
              ("targets", Json.Num (float_of_int p.Netsim.Planet.n_targets));
              ("create_s", Json.num create_s);
              ("stream_s", Json.num stream_s);
              ("targets_per_s", Json.num targets_per_s);
              ("live_words_before", Json.Num (float_of_int heap_before));
              ("live_words_after", Json.Num (float_of_int heap_after));
              ("live_growth_ratio", Json.num heap_growth);
              ("checksum", Json.num checksum);
            ] );
        ("ctx_landmarks", Json.Num (float_of_int n_landmarks_ctx));
        ("distinct_requests", Json.Num (float_of_int n_requests));
        ("backend_cache_capacity", Json.Num (float_of_int cache_capacity));
        ("clients", Json.Num (float_of_int n_clients));
        ("scaling_2x_ratio", Json.num scaling_2x);
        ("min_scaling_2x", Json.num shard_min_scaling_2x);
      ]
    ~gates:
      [
        Emit.gate "stream_parity" stream_parity
          "shuffled streamed targets bit-identical to the eager tables";
        Emit.gate "flat_memory" (heap_growth <= 1.2)
          (Printf.sprintf
             "live heap grew %.3fx across a %d-target stream (want <= 1.2x: streaming must \
              not accumulate state)"
             heap_growth p.Netsim.Planet.n_targets);
        Emit.gate "scaling_2x" (scaling_2x >= shard_min_scaling_2x)
          (Printf.sprintf "2-backend throughput %.2fx the 1-backend row (want >= %.1fx)"
             scaling_2x shard_min_scaling_2x);
      ]
    ~rows:(List.rev !rows) "BENCH_shard.json"

(* ------------------------------------------------------------------ *)
(* Adaptive refinement (--landmark-budget / --refine) *)
(* ------------------------------------------------------------------ *)

(* Acceptance thresholds, asserted here and re-checked by CI's jq pass
   over BENCH_refine.json: the parity row (budget = every landmark,
   admitted in round one) must be bit-identical to the unbudgeted solver;
   the default anytime config must hold its median error within 1.15x of
   the full-landmark solve while cutting clip work per target by at least
   25%. *)
let refine_max_default_error_ratio = 1.15
let refine_max_default_clips_ratio = 0.75

let refine_bench () =
  banner "REFINE: adaptive landmark admission, error and clip work vs budget";
  let bench_t0 = Emit.now () in
  let deployment = Netsim.Deployment.make ~seed ~n_hosts () in
  let bridge = Eval.Bridge.create deployment in
  let n = Eval.Bridge.host_count bridge in
  let n_lm = n / 2 in
  let lm_set = Array.init n_lm Fun.id in
  let landmarks = Eval.Bridge.landmarks_for bridge ~exclude:(-1) lm_set in
  let inter = Eval.Bridge.inter_rtt_for bridge lm_set in
  let n_targets = n - n_lm in
  let obs =
    Octant.Parallel.seq_init n_targets (fun i ->
        Eval.Bridge.observations bridge ~landmark_indices:lm_set ~target:(n_lm + i))
  in
  let truths = Array.init n_targets (fun i -> Eval.Bridge.position bridge (n_lm + i)) in
  let ctx = Octant.Pipeline.prepare ~landmarks ~inter_landmark_rtt_ms:inter () in
  Printf.printf "# %d fixed landmarks, %d targets, jobs=1 per row\n%!" n_lm n_targets;
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let clip_work () =
    let snap = Octant.Telemetry.snapshot () in
    List.fold_left
      (fun acc c ->
        if
          c.Octant.Telemetry.c_domain = "clip"
          && (c.Octant.Telemetry.c_name = "inter" || c.Octant.Telemetry.c_name = "diff")
        then acc + c.Octant.Telemetry.c_value
        else acc)
      0 snap.Octant.Telemetry.counters
  in
  (* One measured row: localize every target sequentially under [refine]
     (None = the unbudgeted baseline), clip counters fresh per row. *)
  let run refine =
    Octant.Telemetry.reset ();
    Octant.Telemetry.enable ();
    let rctx = Octant.Pipeline.with_refine ctx refine in
    let results, t =
      wall (fun () ->
          Array.map
            (fun o ->
              match refine with
              | None -> (Octant.Pipeline.localize ~undns:Eval.Bridge.undns rctx o, None)
              | Some _ ->
                  let est, stats =
                    Octant.Pipeline.localize_refined ~undns:Eval.Bridge.undns rctx o
                  in
                  (est, Some stats))
            obs)
    in
    Octant.Telemetry.disable ();
    (results, t, clip_work ())
  in
  let errors results =
    Array.of_list
      (List.mapi
         (fun i (est, _) -> Octant.Estimate.error_miles est truths.(i))
         (Array.to_list results))
  in
  let same (a : Octant.Estimate.t) (b : Octant.Estimate.t) =
    a.Octant.Estimate.point = b.Octant.Estimate.point
    && a.Octant.Estimate.point_plane = b.Octant.Estimate.point_plane
    && a.Octant.Estimate.area_km2 = b.Octant.Estimate.area_km2
    && a.Octant.Estimate.top_weight = b.Octant.Estimate.top_weight
    && a.Octant.Estimate.cells_used = b.Octant.Estimate.cells_used
    && a.Octant.Estimate.constraints_used = b.Octant.Estimate.constraints_used
    && a.Octant.Estimate.target_height_ms = b.Octant.Estimate.target_height_ms
  in
  (* Baseline: every landmark, no refinement loop. *)
  let base_results, base_t, base_clips = run None in
  let base_errs = errors base_results in
  let base_clips_per_target = float_of_int base_clips /. float_of_int n_targets in
  Printf.printf
    "  %-12s %6.2fs   median %6.1f mi  p90 %6.1f mi   %7.0f clips/target\n%!" "unbudgeted"
    base_t (Stats.Sample.median base_errs)
    (Stats.Sample.percentile 90.0 base_errs)
    base_clips_per_target;
  (* Parity row: the full budget admitted in round one must reproduce the
     baseline bit for bit — the invariant the property suite pins on
     small worlds, re-checked here on the bench deployment. *)
  let parity_cfg =
    {
      Octant.Solver.default_refine with
      Octant.Solver.budget = 0;
      initial = n_lm;
      step = n_lm;
    }
  in
  let parity_results, _, _ = run (Some parity_cfg) in
  let full_budget_parity =
    Array.for_all2 (fun (a, _) (b, _) -> same a b) base_results parity_results
  in
  Printf.printf "  full-budget parity vs unbudgeted: %s\n%!"
    (if full_budget_parity then "bit-identical" else "DIVERGED");
  (* Budget sweep: the anytime defaults at several caps; budget 0 rides
     the sweep as "every landmark, anytime order" so the early-exit
     distribution at the far end is visible too. *)
  let budgets = [ 6; 10; Octant.Solver.default_refine.Octant.Solver.budget; 0 ] in
  let json_rows = ref [] in
  let default_ratios = ref None in
  List.iter
    (fun budget ->
      let rc = { Octant.Solver.default_refine with Octant.Solver.budget = budget } in
      let results, t, clips = run (Some rc) in
      let errs = errors results in
      let med = Stats.Sample.median errs in
      let p90 = Stats.Sample.percentile 90.0 errs in
      let clips_per_target = float_of_int clips /. float_of_int n_targets in
      let stats =
        Array.to_list results
        |> List.filter_map (fun (_, s) -> s)
      in
      let early_exits =
        List.length (List.filter (fun s -> s.Octant.Solver.rs_early_exit) stats)
      in
      let admitted = List.map (fun s -> s.Octant.Solver.rs_admitted) stats in
      let mean_admitted =
        float_of_int (List.fold_left ( + ) 0 admitted)
        /. float_of_int (Stdlib.max 1 (List.length admitted))
      in
      let histogram =
        let tbl = Hashtbl.create 8 in
        List.iter
          (fun k -> Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
          admitted;
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare
      in
      let label = if budget = 0 then "budget=all" else Printf.sprintf "budget=%d" budget in
      let err_ratio = med /. Float.max (Stats.Sample.median base_errs) 0.1 in
      let clips_ratio = clips_per_target /. Float.max base_clips_per_target 1e-9 in
      if budget = Octant.Solver.default_refine.Octant.Solver.budget then
        default_ratios := Some (err_ratio, clips_ratio);
      Printf.printf
        "  %-12s %6.2fs   median %6.1f mi  p90 %6.1f mi   %7.0f clips/target (%.2fx)   \
         early exit %d/%d   mean admitted %.1f/%d\n%!"
        label t med p90 clips_per_target clips_ratio early_exits n_targets mean_admitted n_lm;
      json_rows :=
        Json.Obj
          [
            ("budget", Json.Num (float_of_int budget));
            ("wall_s", Json.num t);
            ("median_error_miles", Json.num med);
            ("p90_error_miles", Json.num p90);
            ("error_ratio_vs_full", Json.num err_ratio);
            ("clips_per_target", Json.num clips_per_target);
            ("clips_ratio_vs_full", Json.num clips_ratio);
            ("early_exits", Json.Num (float_of_int early_exits));
            ("mean_admitted", Json.num mean_admitted);
            ( "admitted_histogram",
              Json.Obj
                (List.map
                   (fun (k, v) -> (string_of_int k, Json.Num (float_of_int v)))
                   histogram) );
          ]
        :: !json_rows)
    budgets;
  let default_error_ratio, default_clips_ratio =
    match !default_ratios with
    | Some r -> r
    | None ->
        Printf.eprintf "REFINE FAIL: no sweep row at the default budget\n";
        exit 1
  in
  Printf.printf
    "# gates: default-budget error ratio %.3f (<= %.2f), clips ratio %.3f (<= %.2f), parity %s\n%!"
    default_error_ratio refine_max_default_error_ratio default_clips_ratio
    refine_max_default_clips_ratio
    (if full_budget_parity then "ok" else "FAIL");
  Emit.write ~bench:"refine" ~t0:bench_t0
    ~fields:
      [
        ("landmarks", Json.Num (float_of_int n_lm));
        ("targets", Json.Num (float_of_int n_targets));
        ("unbudgeted_median_error_miles", Json.num (Stats.Sample.median base_errs));
        ("unbudgeted_p90_error_miles", Json.num (Stats.Sample.percentile 90.0 base_errs));
        ("unbudgeted_clips_per_target", Json.num base_clips_per_target);
        ("unbudgeted_wall_s", Json.num base_t);
        ("full_budget_parity", Json.Bool full_budget_parity);
        ("default_error_ratio_vs_full", Json.num default_error_ratio);
        ("default_clips_ratio_vs_full", Json.num default_clips_ratio);
        ("max_default_error_ratio", Json.num refine_max_default_error_ratio);
        ("max_default_clips_ratio", Json.num refine_max_default_clips_ratio);
      ]
    ~gates:
      [
        Emit.gate "full_budget_parity" full_budget_parity
          "full-budget refined solve bit-identical to the unbudgeted solver";
        Emit.gate "default_error_ratio"
          (default_error_ratio <= refine_max_default_error_ratio)
          (Printf.sprintf
             "default-budget median error %.3fx the full-landmark solve (want <= %.2fx)"
             default_error_ratio refine_max_default_error_ratio);
        Emit.gate "default_clips_ratio"
          (default_clips_ratio <= refine_max_default_clips_ratio)
          (Printf.sprintf "default budget cut clips to %.3fx of unbudgeted (want <= %.2fx)"
             default_clips_ratio refine_max_default_clips_ratio);
      ]
    ~rows:(List.rev !json_rows) "BENCH_refine.json"

(* ------------------------------------------------------------------ *)
(* Streaming re-localization *)
(* ------------------------------------------------------------------ *)

(* Gates for the persistent-session live-update path (ROADMAP item 1):
   folding a delta into the live arrangement must beat a from-scratch
   re-solve of the same constraint log by at least this factor, the
   incremental estimate must stay bit-identical to that re-solve at
   every prefix, and the session's live state must stay flat across a
   long feed (epoch decay actually bounds the log). *)
let stream_min_fold_speedup = 2.0
let stream_max_live_growth = 1.10

let stream_bench () =
  banner "STREAM: persistent sessions, incremental folds vs full re-solves";
  let bench_t0 = Emit.now () in
  (* A 16-landmark world: hosts 0..15 serve as landmarks, host 16 is the
     streamed target. *)
  let n_world = 20 in
  let n_lm = 16 in
  let deployment = Netsim.Deployment.make ~seed ~n_hosts:n_world () in
  let bridge = Eval.Bridge.create deployment in
  let lm_set = Array.init n_lm Fun.id in
  let landmarks = Eval.Bridge.landmarks_for bridge ~exclude:(-1) lm_set in
  let inter = Eval.Bridge.inter_rtt_for bridge lm_set in
  let ctx = Octant.Pipeline.prepare ~landmarks ~inter_landmark_rtt_ms:inter () in
  let base_obs = Eval.Bridge.observations bridge ~landmark_indices:lm_set ~target:16 in
  let base_rtts = base_obs.Octant.Pipeline.target_rtt_ms in
  (* Deterministic synthetic feed: each update re-measures two random
     landmarks with +-10% jitter on the true RTT; every [retire_every]
     updates epochs older than a [window]-epoch sliding horizon decay. *)
  let retire_every = 64 in
  let window = 96 in
  let feed n =
    let rng = Stats.Rng.create 42 in
    Array.init n (fun i ->
        let epoch = i + 1 in
        let d_rtts =
          Array.init 2 (fun _ ->
              let lm = Stats.Rng.int rng n_lm in
              (lm, base_rtts.(lm) *. Stats.Rng.uniform rng 0.9 1.1))
        in
        let retire =
          if epoch mod retire_every = 0 && epoch - window >= 0 then Some (epoch - window)
          else None
        in
        (epoch, d_rtts, retire))
  in
  let same (a : Octant.Estimate.t) (b : Octant.Estimate.t) =
    a.Octant.Estimate.point = b.Octant.Estimate.point
    && a.Octant.Estimate.point_plane = b.Octant.Estimate.point_plane
    && a.Octant.Estimate.area_km2 = b.Octant.Estimate.area_km2
    && a.Octant.Estimate.top_weight = b.Octant.Estimate.top_weight
    && a.Octant.Estimate.cells_used = b.Octant.Estimate.cells_used
    && a.Octant.Estimate.constraints_used = b.Octant.Estimate.constraints_used
    && a.Octant.Estimate.target_height_ms = b.Octant.Estimate.target_height_ms
  in
  let apply session (epoch, d_rtts, retire) =
    let est =
      Octant.Pipeline.Session.fold session
        { Octant.Pipeline.Session.d_rtts; d_epoch = epoch }
    in
    match retire with
    | Some upto -> Octant.Pipeline.Session.retire session ~upto_epoch:upto
    | None -> est
  in
  (* Phase A: prefix parity and fold-vs-resolve speedup.  At every
     prefix of the feed the folded estimate is compared (bit for bit)
     against a from-scratch re-solve of the session's surviving
     constraint log, and both paths are timed on the same prefixes. *)
  let n_parity = 150 in
  let parity_feed = feed n_parity in
  let session, _ = Octant.Pipeline.Session.create ctx base_obs in
  let fold_s = ref 0.0 and resolve_s = ref 0.0 in
  let parity_failures = ref 0 in
  Array.iter
    (fun u ->
      let t0 = Unix.gettimeofday () in
      let est = apply session u in
      fold_s := !fold_s +. (Unix.gettimeofday () -. t0);
      let t1 = Unix.gettimeofday () in
      let replay = Octant.Pipeline.Session.replay_estimate session in
      resolve_s := !resolve_s +. (Unix.gettimeofday () -. t1);
      if not (same est replay) then incr parity_failures)
    parity_feed;
  let prefix_parity = !parity_failures = 0 in
  let fold_speedup = !resolve_s /. Float.max !fold_s 1e-9 in
  let fold_us = 1e6 *. !fold_s /. float_of_int n_parity in
  let resolve_us = 1e6 *. !resolve_s /. float_of_int n_parity in
  Printf.printf
    "  parity feed: %d updates  fold %7.0f us/update  re-solve %7.0f us/update  speedup %.2fx  parity %s\n%!"
    n_parity fold_us resolve_us fold_speedup
    (if prefix_parity then "ok (every prefix)" else Printf.sprintf "FAIL (%d)" !parity_failures);
  (* Phase B: a long feed.  Folds only (re-solve sampled sparsely for a
     parity spot check), live state sampled to prove epoch decay keeps
     session memory flat across >= 1k updates. *)
  let n_long = 1200 in
  let long_feed = feed n_long in
  let session2, _ = Octant.Pipeline.Session.create ctx base_obs in
  let samples = ref [] in
  let long_fold_s = ref 0.0 in
  let long_parity_ok = ref true in
  Array.iteri
    (fun i u ->
      let t0 = Unix.gettimeofday () in
      let est = apply session2 u in
      long_fold_s := !long_fold_s +. (Unix.gettimeofday () -. t0);
      if (i + 1) mod 50 = 0 then
        samples :=
          ( i + 1,
            Octant.Pipeline.Session.live_constraints session2,
            Octant.Pipeline.Session.cells_live session2 )
          :: !samples;
      if (i + 1) mod 200 = 0 then
        long_parity_ok :=
          !long_parity_ok && same est (Octant.Pipeline.Session.replay_estimate session2))
    long_feed;
  let samples = List.rev !samples in
  let updates_per_s = float_of_int n_long /. Float.max !long_fold_s 1e-9 in
  (* Flatness: after the first retire horizon has passed, the peak live
     constraint count must not keep growing. *)
  let warm = List.filter (fun (i, _, _) -> i > window) samples in
  let half = (n_long + window) / 2 in
  let peak p =
    List.fold_left (fun acc (i, live, _) -> if p i then Stdlib.max acc live else acc) 0 warm
  in
  let first_peak = peak (fun i -> i <= half) in
  let second_peak = peak (fun i -> i > half) in
  let live_growth = float_of_int second_peak /. float_of_int (Stdlib.max first_peak 1) in
  let memory_flat = live_growth <= stream_max_live_growth in
  Printf.printf
    "  long feed: %d updates at %7.0f updates/s  live peak %d (first half) -> %d (second half, %.2fx)\n%!"
    n_long updates_per_s first_peak second_peak live_growth;
  Printf.printf "# gates: prefix parity %s, fold speedup %.2fx (>= %.1fx), live growth %.2fx (<= %.2fx)\n%!"
    (if prefix_parity && !long_parity_ok then "ok" else "FAIL")
    fold_speedup stream_min_fold_speedup live_growth stream_max_live_growth;
  Emit.write ~bench:"stream" ~t0:bench_t0
    ~fields:
      [
        ("landmarks", Json.Num (float_of_int n_lm));
        ("parity_updates", Json.Num (float_of_int n_parity));
        ("long_updates", Json.Num (float_of_int n_long));
        ("retire_every", Json.Num (float_of_int retire_every));
        ("retire_window", Json.Num (float_of_int window));
        ("fold_us_per_update", Json.num fold_us);
        ("resolve_us_per_update", Json.num resolve_us);
        ("fold_speedup", Json.num fold_speedup);
        ("min_fold_speedup", Json.num stream_min_fold_speedup);
        ("updates_per_s", Json.num updates_per_s);
        ("live_peak_first_half", Json.Num (float_of_int first_peak));
        ("live_peak_second_half", Json.Num (float_of_int second_peak));
        ("live_growth", Json.num live_growth);
        ("max_live_growth", Json.num stream_max_live_growth);
        ("prefix_parity", Json.Bool (prefix_parity && !long_parity_ok));
      ]
    ~gates:
      [
        Emit.gate "prefix_parity"
          (prefix_parity && !long_parity_ok)
          "incremental estimate bit-identical to a from-scratch re-solve at every prefix";
        Emit.gate "fold_speedup"
          (fold_speedup >= stream_min_fold_speedup)
          (Printf.sprintf "fold %.2fx faster than naive re-solve (want >= %.1fx)" fold_speedup
             stream_min_fold_speedup);
        Emit.gate "memory_flat" memory_flat
          (Printf.sprintf
             "peak live constraints grew %.2fx across %d updates (want <= %.2fx)" live_growth
             n_long stream_max_live_growth);
      ]
    ~rows:
      (List.map
         (fun (i, live, cells) ->
           Json.Obj
             [
               ("update", Json.Num (float_of_int i));
               ("live_constraints", Json.Num (float_of_int live));
               ("cells_live", Json.Num (float_of_int cells));
             ])
         samples)
    "BENCH_stream.json"

(* ------------------------------------------------------------------ *)
(* Figure 4 *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  banner "FIG4: correctly localized targets vs number of landmarks (paper Figure 4)";
  let sweep = Eval.Sweep.run ~seed ~n_hosts ~landmark_counts:[ 10; 20; 30; 40; 50 ] () in
  Eval.Report.print_figure4 sweep;
  (match (sweep, List.rev sweep) with
  | first :: _, last :: _ ->
      Printf.printf
        "# shape check: Octant hit-rate %.0f%% -> %.0f%% as landmarks grow (stays high);\n"
        (100.0 *. first.Eval.Sweep.octant_hit_rate)
        (100.0 *. last.Eval.Sweep.octant_hit_rate);
      Printf.printf "#              GeoLim hit-rate %.0f%% -> %.0f%% (paper: GeoLim degrades)\n"
        (100.0 *. first.Eval.Sweep.geolim_hit_rate)
        (100.0 *. last.Eval.Sweep.geolim_hit_rate)
  | _ -> ())

(* ------------------------------------------------------------------ *)
(* Ablation *)
(* ------------------------------------------------------------------ *)

let ablation () =
  banner "ABLATION: each Octant mechanism disabled in turn (paper sections 2.1-2.5)";
  Eval.Report.print_ablation (Eval.Ablation.run ~seed ~n_hosts ())

(* ------------------------------------------------------------------ *)
(* Robustness to erroneous constraints (paper section 2.4) *)
(* ------------------------------------------------------------------ *)

let robustness () =
  banner "ROBUSTNESS: corrupted measurements (paper section 2.4)";
  let points = Eval.Robustness.run ~seed ~n_hosts () in
  Printf.printf "# a fraction of each target's RTTs is replaced by 0.3x-3x the true value\n";
  Printf.printf "# %-10s %14s %12s %14s %12s %14s\n" "corrupt%" "octant_med_mi" "octant_hit%"
    "geolim_med_mi" "geolim_hit%" "geolim_empty%";
  List.iter
    (fun p ->
      Printf.printf "  %-10.0f %14.1f %12.1f %14.1f %12.1f %14.1f\n"
        (100.0 *. p.Eval.Robustness.corruption_rate)
        p.Eval.Robustness.octant_median_miles
        (100.0 *. p.Eval.Robustness.octant_hit_rate)
        p.Eval.Robustness.geolim_median_miles
        (100.0 *. p.Eval.Robustness.geolim_hit_rate)
        (100.0 *. p.Eval.Robustness.geolim_empty_rate))
    points;
  Printf.printf
    "# the paper's brittleness argument: a pure intersection collapses to the\n\
     # empty set under a single erroneous constraint, while the weighted\n\
     # arrangement only demotes the true cell by one weight step.\n"

(* ------------------------------------------------------------------ *)
(* Byzantine landmarks (BFT-PoLoc-style coalitions) *)
(* ------------------------------------------------------------------ *)

(* Acceptance thresholds, asserted here and re-checked by CI's jq pass
   over BENCH_adversary.json.  Derived from the committed snapshot with
   headroom: parity at f=0 is exact in expectation (hardening must not
   change the clean answer much), the f=3 multiple bounds how far three
   colluders may drag the hardened median from the clean run, and GeoLim's
   empty-rate collapse is the brittleness the paper predicts for pure
   intersections. *)
let adv_max_parity_ratio_f0 = 1.25
let adv_max_hardened_f3_multiple = 3.0
let adv_min_geolim_empty_f3 = 0.5

let adversary_bench () =
  banner "ADVERSARY: colluding landmarks, error vs coalition size f (BFT-PoLoc threat model)";
  let bench_t0 = Emit.now () in
  let n_hosts = 41 in
  let fs = [ 0; 1; 2; 3; 4 ] in
  let points = Eval.Adversarial.run ~seed ~n_hosts ~fs () in
  Printf.printf
    "# %d hosts split half landmarks / half targets; f colluders fabricate\n\
     # mutually consistent RTTs placing each target at a common fake region\n"
    n_hosts;
  Printf.printf "# %-4s %12s %6s %12s %6s %12s %6s %8s %12s\n" "f" "octant_mi" "hit%"
    "harden_mi" "hit%" "geolim_mi" "hit%" "empty%" "geoping_mi";
  List.iter
    (fun (p : Eval.Adversarial.point) ->
      Printf.printf "  %-4d %12.1f %6.1f %12.1f %6.1f %12.1f %6.1f %8.1f %12.1f\n" p.f
        p.octant_median_miles
        (100.0 *. p.octant_hit_rate)
        p.hardened_median_miles
        (100.0 *. p.hardened_hit_rate)
        p.geolim_median_miles
        (100.0 *. p.geolim_hit_rate)
        (100.0 *. p.geolim_empty_rate)
        p.geoping_median_miles)
    points;
  let at f =
    match List.find_opt (fun (p : Eval.Adversarial.point) -> p.f = f) points with
    | Some p -> p
    | None ->
        Printf.eprintf "ADVERSARY FAIL: no curve point for f=%d\n" f;
        exit 1
  in
  let p0 = at 0 and p3 = at 3 in
  let parity_ratio =
    Float.max
      (p0.hardened_median_miles /. Float.max p0.octant_median_miles 0.1)
      (p0.octant_median_miles /. Float.max p0.hardened_median_miles 0.1)
  in
  let hardened_f3_multiple = p3.hardened_median_miles /. Float.max p0.octant_median_miles 0.1 in
  Printf.printf
    "# gates: f=0 parity ratio %.2f (<= %.2f), hardened f=3 multiple %.2fx (<= %.1fx),\n\
     #        GeoLim empty-rate at f=3 %.0f%% (>= %.0f%%)\n"
    parity_ratio adv_max_parity_ratio_f0 hardened_f3_multiple adv_max_hardened_f3_multiple
    (100.0 *. p3.geolim_empty_rate)
    (100.0 *. adv_min_geolim_empty_f3);
  let json_rows =
    List.map
      (fun (p : Eval.Adversarial.point) ->
        Json.Obj
          [
            ("f", Json.Num (float_of_int p.f));
            ("octant_median_miles", Json.num p.octant_median_miles);
            ("octant_hit_rate", Json.num p.octant_hit_rate);
            ("hardened_median_miles", Json.num p.hardened_median_miles);
            ("hardened_hit_rate", Json.num p.hardened_hit_rate);
            ("geolim_median_miles", Json.num p.geolim_median_miles);
            ("geolim_hit_rate", Json.num p.geolim_hit_rate);
            ("geolim_empty_rate", Json.num p.geolim_empty_rate);
            ("geoping_median_miles", Json.num p.geoping_median_miles);
          ])
      points
  in
  Emit.write ~bench:"adversary" ~t0:bench_t0
    ~fields:
      [
        ("scenario", Json.Str "coalition");
        ("hosts", Json.Num (float_of_int n_hosts));
        ("parity_ratio_f0", Json.num parity_ratio);
        ("hardened_f3_multiple", Json.num hardened_f3_multiple);
        ("geolim_empty_rate_f3", Json.num p3.geolim_empty_rate);
        ("max_parity_ratio_f0", Json.num adv_max_parity_ratio_f0);
        ("max_hardened_f3_multiple", Json.num adv_max_hardened_f3_multiple);
        ("min_geolim_empty_f3", Json.num adv_min_geolim_empty_f3);
      ]
    ~gates:
      [
        Emit.gate "parity_f0" (parity_ratio <= adv_max_parity_ratio_f0)
          (Printf.sprintf
             "zero-adversary parity ratio %.2f (want <= %.2f; hardening must not distort the \
              clean run)"
             parity_ratio adv_max_parity_ratio_f0);
        Emit.gate "hardened_f3" (hardened_f3_multiple <= adv_max_hardened_f3_multiple)
          (Printf.sprintf "hardened median at f=3 is %.2fx the clean run (want <= %.1fx)"
             hardened_f3_multiple adv_max_hardened_f3_multiple);
        Emit.gate "geolim_collapse_f3" (p3.geolim_empty_rate >= adv_min_geolim_empty_f3)
          (Printf.sprintf "GeoLim empty-rate at f=3 is %.0f%% (expected collapse >= %.0f%%)"
             (100.0 *. p3.geolim_empty_rate)
             (100.0 *. adv_min_geolim_empty_f3));
      ]
    ~rows:json_rows "BENCH_adversary.json"

(* ------------------------------------------------------------------ *)
(* Secondary landmarks (paper section 2: primary vs secondary landmarks) *)
(* ------------------------------------------------------------------ *)

let secondary () =
  banner "SECONDARY: region-valued secondary landmarks (paper section 2)";
  let rows = Eval.Secondary.run ~seed ~n_hosts ~n_primary:12 () in
  Printf.printf "# 12 primary landmarks; every other host localized, then reused as a\n";
  Printf.printf "# secondary landmark with a region-valued position.\n";
  Printf.printf "# %-18s %10s %10s %8s %16s\n" "condition" "median_mi" "p90_mi" "hit%" "median_area_mi2";
  List.iter
    (fun r ->
      Printf.printf "  %-18s %10.1f %10.1f %8.1f %16.0f\n" r.Eval.Secondary.label
        r.Eval.Secondary.median_miles r.Eval.Secondary.p90_miles
        (100.0 *. r.Eval.Secondary.hit_rate) r.Eval.Secondary.median_area_sq_miles)
    rows;
  Printf.printf
    "# the framework accepts landmarks whose own position is only a region:\n\
     # positive constraints dilate by the region, negative ones erode to the\n\
     # common disk (paper section 2).  With this substrate's region sizes the\n\
     # net effect is a modest coverage gain at a small median cost; the same\n\
     # mechanism applied to routers (piecewise, section 2.3) is where the\n\
     # paper gets its large wins.\n"

(* ------------------------------------------------------------------ *)
(* Vivaldi comparison (extension; paper references Vivaldi in section 2.2) *)
(* ------------------------------------------------------------------ *)

let vivaldi () =
  banner "VIVALDI: idealized coordinate embedding vs Octant (extension)";
  let deployment = Netsim.Deployment.make ~seed ~n_hosts () in
  let bridge = Eval.Bridge.create deployment in
  let n = Eval.Bridge.host_count bridge in
  let all = Array.init n Fun.id in
  let errs = ref [] in
  for target = 0 to n - 1 do
    let truth = Eval.Bridge.position bridge target in
    let landmarks = Eval.Bridge.landmarks_for bridge ~exclude:target all in
    let lm_indices = Array.of_list (List.filter (fun i -> i <> target) (Array.to_list all)) in
    let inter = Eval.Bridge.inter_rtt_for bridge lm_indices in
    let obs = Eval.Bridge.observations bridge ~with_traceroutes:false ~landmark_indices:all ~target in
    let v = Baselines.Vivaldi.embed ~landmarks ~inter_landmark_rtt_ms:inter () in
    let r = Baselines.Vivaldi.localize v ~target_rtt_ms:obs.Octant.Pipeline.target_rtt_ms in
    errs :=
      Geo.Geodesy.miles_of_km (Geo.Geodesy.distance_km r.Baselines.Vivaldi.point truth) :: !errs
  done;
  let arr = Array.of_list !errs in
  Printf.printf
    "Vivaldi (anchored to true landmark positions, best case for embeddings):\n";
  Printf.printf "  median=%7.1f mi  p90=%7.1f  worst=%7.1f\n" (Stats.Sample.median arr)
    (Stats.Sample.percentile 90.0 arr)
    (Stats.Sample.max arr);
  Printf.printf
    "# even with ground-truth anchoring, a metric embedding cannot express\n\
     # the asymmetric, non-metric structure that Octant's constraints capture.\n"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks *)
(* ------------------------------------------------------------------ *)

let micro () =
  banner "MICRO: Bechamel benchmarks of the geometric and solver kernels";
  let open Bechamel in
  let deployment = Netsim.Deployment.make ~seed ~n_hosts:20 () in
  let bridge = Eval.Bridge.create deployment in
  let n = Eval.Bridge.host_count bridge in
  let all = Array.init n Fun.id in
  let target = 0 in
  let landmarks = Eval.Bridge.landmarks_for bridge ~exclude:target all in
  let lm_indices = Array.of_list (List.filter (fun i -> i <> target) (Array.to_list all)) in
  let inter = Eval.Bridge.inter_rtt_for bridge lm_indices in
  let obs = Eval.Bridge.observations bridge ~landmark_indices:all ~target in
  let ctx = Octant.Pipeline.prepare ~landmarks ~inter_landmark_rtt_ms:inter () in
  let disk_a = Geo.Region.disk ~center:(Geo.Point.make 0.0 0.0) ~radius:500.0 () in
  let disk_b = Geo.Region.disk ~center:(Geo.Point.make 300.0 100.0) ~radius:400.0 () in
  let ring =
    Geo.Region.annulus ~center:(Geo.Point.make 100.0 0.0) ~r_inner:200.0 ~r_outer:600.0 ()
  in
  let positions = Array.map (fun l -> l.Octant.Pipeline.lm_position) landmarks in
  let tests =
    Test.make_grouped ~name:"octant"
      [
        Test.make ~name:"region-inter-disk-disk"
          (Staged.stage (fun () -> ignore (Geo.Region.inter disk_a disk_b)));
        Test.make ~name:"region-diff-disk-ring"
          (Staged.stage (fun () -> ignore (Geo.Region.diff disk_a ring)));
        Test.make ~name:"bezier-circle-flatten"
          (Staged.stage (fun () ->
               ignore
                 (Geo.Bezier.to_polygon ~tolerance:0.5
                    (Geo.Bezier.circle ~center:Geo.Point.zero ~radius:300.0))));
        Test.make ~name:"convex-hull-50pts"
          (Staged.stage (fun () ->
               let rng = Stats.Rng.create 5 in
               let pts =
                 Array.init 50 (fun _ ->
                     Geo.Point.make (Stats.Rng.uniform rng 0.0 100.0)
                       (Stats.Rng.uniform rng 0.0 100.0))
               in
               ignore (Geo.Convex_hull.hull pts)));
        Test.make ~name:"heights-lsq-19-landmarks"
          (Staged.stage (fun () ->
               ignore (Octant.Heights.solve_landmarks ~positions ~rtt_ms:inter)));
        Test.make ~name:"full-localization-19lm"
          (Staged.stage (fun () ->
               ignore (Octant.Pipeline.localize ~undns:Eval.Bridge.undns ctx obs)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 1.5) ~kde:(Some 10) () in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let raw = Benchmark.all cfg instances tests in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> rows := (name, est) :: !rows
      | _ -> ())
    results;
  List.iter
    (fun (name, ns) ->
      if ns > 1e6 then Printf.printf "%-40s %10.2f ms/op\n" name (ns /. 1e6)
      else if ns > 1e3 then Printf.printf "%-40s %10.2f us/op\n" name (ns /. 1e3)
      else Printf.printf "%-40s %10.0f ns/op\n" name ns)
    (List.sort compare !rows)

(* ------------------------------------------------------------------ *)

let () =
  let what = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match what with
  | "fig2" -> fig2 ()
  | "fig3" -> ignore (fig3 ())
  | "fig4" -> fig4 ()
  | "ablation" -> ablation ()
  | "vivaldi" -> vivaldi ()
  | "secondary" -> secondary ()
  | "robustness" -> robustness ()
  | "adversary" -> adversary_bench ()
  | "refine" -> refine_bench ()
  | "stream" -> stream_bench ()
  | "timing" -> timing (Eval.Study.run ~seed ~n_hosts ())
  | "batch" -> batch ()
  | "serve" -> serve_bench ()
  | "shard" -> shard_bench ()
  | "region" -> region_bench ()
  | "geom" -> geom ()
  | "micro" -> micro ()
  | "all" ->
      fig2 ();
      let study = fig3 () in
      fig4 ();
      ablation ();
      robustness ();
      adversary_bench ();
      refine_bench ();
      stream_bench ();
      secondary ();
      vivaldi ();
      timing study;
      batch ();
      serve_bench ();
      shard_bench ();
      region_bench ();
      geom ();
      micro ()
  | other ->
      Printf.eprintf "unknown bench target %S (fig2|fig3|fig4|ablation|robustness|adversary|refine|stream|secondary|vivaldi|timing|batch|serve|shard|region|geom|micro|all)\n" other;
      exit 1
