(* Shared envelope for the BENCH_<target>.json snapshots.

   Every performance-tracking target goes through {!write}: the same
   provenance fields (git revision, bench wall time, recommended domain
   count) in every file, plus a [gates] array recording each acceptance
   check the target ran.  The file is written {e before} the gates are
   enforced, so a failed run still leaves its snapshot on disk for
   debugging and artifact upload; enforcement then prints every breached
   gate and exits non-zero. *)

module Json = Octant_serve.Json

type gate = { g_name : string; g_pass : bool; g_detail : string }

let gate name pass detail = { g_name = name; g_pass = pass; g_detail = detail }

(* Provenance only; "unknown" wherever git is absent (a source tarball). *)
let git_rev =
  lazy
    (try
       let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
       let rev = try String.trim (input_line ic) with End_of_file -> "" in
       match (Unix.close_process_in ic, rev) with
       | Unix.WEXITED 0, rev when rev <> "" -> rev
       | _ -> "unknown"
     with Unix.Unix_error _ | Sys_error _ -> "unknown")

let now () = Unix.gettimeofday ()

let schema_version = 1

let write ~bench ~t0 ?(fields = []) ?(gates = []) ~rows path =
  let json =
    Json.Obj
      ([
         ("bench", Json.Str bench);
         (* Version of this envelope's shape; CI's jq validators assert
            it, so a field rename or removal must bump it in lockstep
            with the validators. *)
         ("schema_version", Json.Num (float_of_int schema_version));
         ("git_rev", Json.Str (Lazy.force git_rev));
         ("bench_wall_s", Json.num (now () -. t0));
         ("recommended_domains", Json.Num (float_of_int (Octant.Parallel.default_jobs ())));
       ]
      @ fields
      @ [
          ("rows", Json.List rows);
          ( "gates",
            Json.List
              (List.map
                 (fun g ->
                   Json.Obj
                     [
                       ("name", Json.Str g.g_name);
                       ("pass", Json.Bool g.g_pass);
                       ("detail", Json.Str g.g_detail);
                     ])
                 gates) );
        ])
  in
  let oc = open_out path in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "# wrote %s\n%!" path;
  let failed = List.filter (fun g -> not g.g_pass) gates in
  if failed <> [] then begin
    List.iter
      (fun g ->
        Printf.eprintf "%s FAIL: gate %s: %s\n" (String.uppercase_ascii bench) g.g_name
          g.g_detail)
      failed;
    exit 1
  end
