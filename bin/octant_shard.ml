(* Sharded serving front: consistent-hash fan-out over octant_served
   backends.

   Owns the client-facing port; each localize request is keyed by its
   quantized observation and routed to one of N backend daemons over
   persistent binary connections, so each backend's result cache holds a
   disjoint key range and aggregate cache capacity scales with the
   backend count.  The front never computes.

     octant_served --port 7701 &
     octant_served --port 7702 &
     octant_shard --backend 127.0.0.1:7701 --backend 127.0.0.1:7702

   SIGTERM / SIGINT (or a {"op":"shutdown"} frame) drains: requests
   already fanned out are answered before the front exits; backends keep
   running. *)

open Cmdliner

let port_arg =
  Arg.(value & opt int 0 & info [ "port" ] ~docv:"PORT" ~doc:"TCP port; 0 picks an ephemeral one.")

let host_arg =
  Arg.(value & opt string "127.0.0.1" & info [ "bind" ] ~docv:"ADDR" ~doc:"Bind address.")

let backend_conv =
  let parse s =
    match String.rindex_opt s ':' with
    | None -> Error (`Msg (Printf.sprintf "expected HOST:PORT, got %S" s))
    | Some i -> (
        let host = String.sub s 0 i in
        let port_s = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port_s with
        | Some p when p > 0 && p < 65536 && host <> "" -> Ok (host, p)
        | _ -> Error (`Msg (Printf.sprintf "expected HOST:PORT, got %S" s)))
  in
  Arg.conv (parse, fun fmt (h, p) -> Format.fprintf fmt "%s:%d" h p)

let backends_arg =
  Arg.(
    non_empty
    & opt_all backend_conv []
    & info [ "backend" ] ~docv:"HOST:PORT"
        ~doc:"Backend daemon address; repeat once per backend.")

let vnodes_arg =
  Arg.(
    value
    & opt int 128
    & info [ "vnodes" ] ~docv:"N" ~doc:"Virtual nodes per backend on the hash ring.")

let attempts_arg =
  Arg.(
    value
    & opt int 3
    & info [ "max-attempts" ] ~docv:"N"
        ~doc:
          "Routing attempts per request (first send plus re-fans after backend loss) \
           before the front answers with an error.")

let max_conns_arg =
  Arg.(
    value
    & opt int 900
    & info [ "max-conns" ] ~docv:"N"
        ~doc:"Live client-connection cap; connections past it are closed at accept.")

let drain_arg =
  Arg.(
    value
    & opt float 5.0
    & info [ "drain-timeout" ] ~docv:"S"
        ~doc:
          "How long shutdown waits for in-flight backend replies before answering the \
           remainder with errors.")

let telemetry_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry" ] ~docv:"MODE"
        ~doc:
          "Collect telemetry for the run and emit it at shutdown: $(b,json) (JSON to \
           stdout) or $(b,json:FILE).")

let serve port host backends vnodes max_attempts max_conns drain_timeout telemetry =
  let telemetry_sink =
    match telemetry with
    | None -> None
    | Some "json" -> Some None
    | Some s when String.starts_with ~prefix:"json:" s ->
        Some (Some (String.sub s 5 (String.length s - 5)))
    | Some other ->
        Printf.eprintf "invalid --telemetry mode %S (json | json:FILE)\n" other;
        exit 2
  in
  if telemetry_sink <> None then begin
    Octant.Telemetry.reset ();
    Octant.Telemetry.enable ()
  end;
  let config =
    {
      Octant_serve.Shard.default_config with
      Octant_serve.Shard.host;
      port;
      backends;
      vnodes;
      max_attempts;
      max_connections = max_conns;
      drain_timeout_s = drain_timeout;
    }
  in
  let front =
    try Octant_serve.Shard.start ~config () with
    | Failure msg | Invalid_argument msg ->
        Printf.eprintf "octant_shard: %s\n" msg;
        exit 1
  in
  let up =
    List.length
      (List.filter (fun b -> b.Octant_serve.Shard.bs_up) (Octant_serve.Shard.backend_stats front))
  in
  Printf.printf "octant_shard listening on %s:%d (%d/%d backends up)\n%!" host
    (Octant_serve.Shard.port front)
    up (List.length backends);
  let on_signal _ = Octant_serve.Shard.request_shutdown front in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  Octant_serve.Shard.wait front;
  Printf.printf "octant_shard draining...\n%!";
  Octant_serve.Shard.stop front;
  (match telemetry_sink with
  | None -> ()
  | Some dest -> (
      Octant.Telemetry.disable ();
      let json = Octant.Telemetry.to_json (Octant.Telemetry.snapshot ()) in
      match dest with
      | None -> print_endline json
      | Some path ->
          let oc = open_out path in
          output_string oc json;
          output_char oc '\n';
          close_out oc;
          Printf.eprintf "telemetry written to %s\n" path));
  Printf.printf "octant_shard stopped\n%!"

let main =
  Cmd.v
    (Cmd.info "octant_shard" ~version:"1.0.0"
       ~doc:"Sharded front for octant_served backends (consistent-hash fan-out)")
    Term.(
      const serve $ port_arg $ host_arg $ backends_arg $ vnodes_arg $ attempts_arg
      $ max_conns_arg $ drain_arg $ telemetry_arg)

let () = exit (Cmd.eval main)
