(* Command-line front end for the Octant reproduction.

   Subcommands mirror the experiment surface:

     octant_cli localize --seed 7 --hosts 51 --target 3
     octant_cli calibrate --seed 7 --hosts 51 --landmark 0
     octant_cli study --seed 7 --hosts 51
     octant_cli sweep --seed 7 --counts 10,20,30,40,50
     octant_cli ablation --seed 7 --hosts 51 *)

open Cmdliner

let seed_arg =
  Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc:"Deployment random seed.")

let hosts_arg =
  Arg.(value & opt int 51 & info [ "hosts" ] ~docv:"N" ~doc:"Number of deployed hosts.")

let probes_arg =
  Arg.(value & opt int 10 & info [ "probes" ] ~docv:"K" ~doc:"Ping probes per measurement.")

let jobs_conv =
  let parse s =
    match int_of_string_opt s with
    | Some j when j >= 0 -> Ok j
    | Some _ -> Error (`Msg "must be >= 0 (0 = one domain per core)")
    | None -> Error (`Msg (Printf.sprintf "invalid value '%s', expected an integer" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let jobs_arg =
  Arg.(
    value
    & opt jobs_conv 0
    & info [ "jobs" ] ~docv:"J"
        ~doc:
          "Localization domains. 0 (the default) uses one per available \
           core; results are identical at every setting.")

(* 0 = auto: let the library pick Domain.recommended_domain_count. *)
let jobs_opt = function 0 -> None | j -> Some j

let backend_conv =
  let parse s =
    match Geo.Region_backend.spec_of_string s with Ok v -> Ok v | Error e -> Error (`Msg e)
  in
  let print fmt s = Format.pp_print_string fmt (Geo.Region_backend.spec_to_string s) in
  Arg.conv (parse, print)

let backend_arg =
  Arg.(
    value
    & opt backend_conv Geo.Region_backend.default
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "Region backend the solver dispatches through: $(b,exact) (polygon \
           clipping, the default), $(b,grid)[:RES] (raster over the world box), \
           or $(b,hybrid)[:CELLS] (exact clipping behind a bbox + occupancy-grid \
           prefilter).")

let harden_arg =
  Arg.(
    value & flag
    & info [ "harden" ]
        ~doc:
          "Enable Byzantine-landmark hardening: consistency-score each \
           landmark's latency constraint against the median-of-means \
           consensus region, down-weight repeat offenders before they reach \
           the solver, and trim far-flung weight-band cells at estimate \
           extraction.")

let harden_opt hardened = if hardened then Some Octant.Harden.default else None

let budget_arg =
  Arg.(
    value
    & opt int 0
    & info [ "landmark-budget" ] ~docv:"K"
        ~doc:
          "Admit at most $(docv) landmarks per target, ranked by RTT \
           tightness and angular coverage. Alone, all $(docv) are admitted \
           in one round; with $(b,--refine) they bound the anytime loop. 0 \
           (the default) means no budget.")

let refine_arg =
  Arg.(
    value & flag
    & info [ "refine" ]
        ~doc:
          "Enable anytime refinement: start from the best-ranked landmarks \
           and admit more only while the weighted best cell keeps moving or \
           shrinking, exiting early on stability. Composes with \
           $(b,--harden) (ranking runs on post-attenuation weights) and \
           $(b,--landmark-budget).")

(* --landmark-budget alone is a single admission round of the K best-ranked
   landmarks (initial = step = budget, so the anytime early exit never has
   anything to cut); --refine turns the anytime loop on, bounded by the
   budget when one is given and by [Solver.default_refine] otherwise. *)
let refine_opt budget refine =
  if refine then
    Some
      (if budget > 0 then
         { Octant.Solver.default_refine with Octant.Solver.budget = budget }
       else Octant.Solver.default_refine)
  else if budget > 0 then
    Some
      {
        Octant.Solver.default_refine with
        Octant.Solver.budget = budget;
        initial = budget;
        step = budget;
      }
  else None

(* --- telemetry --- *)

type telemetry_mode = Tree | Json_stdout | Json_file of string

let telemetry_arg =
  let parse = function
    | "tree" -> Ok Tree
    | "json" -> Ok Json_stdout
    | s when String.starts_with ~prefix:"json:" s ->
        Ok (Json_file (String.sub s 5 (String.length s - 5)))
    | s -> Error (`Msg (Printf.sprintf "invalid telemetry mode %S (tree | json | json:FILE)" s))
  in
  let print fmt = function
    | Tree -> Format.pp_print_string fmt "tree"
    | Json_stdout -> Format.pp_print_string fmt "json"
    | Json_file f -> Format.fprintf fmt "json:%s" f
  in
  Arg.(
    value
    & opt ~vopt:(Some Tree) (some (conv (parse, print))) None
    & info [ "telemetry" ] ~docv:"MODE"
        ~doc:
          "Collect pipeline telemetry and report it after the run: $(b,tree) \
           (human-readable; the default when the flag is bare), $(b,json) (JSON \
           to stdout), or $(b,json:FILE) (JSON to a file).")

(* Enable collection around [f] and emit the snapshot afterwards, also on
   exceptions (a crashed run's partial counters are exactly what you want
   to see). *)
let with_telemetry mode f =
  match mode with
  | None -> f ()
  | Some mode ->
      Octant.Telemetry.reset ();
      Octant.Telemetry.enable ();
      let finally () =
        Octant.Telemetry.disable ();
        let snap = Octant.Telemetry.snapshot () in
        match mode with
        | Tree -> Format.printf "@.%a@." Octant.Telemetry.pp_tree snap
        | Json_stdout -> print_endline (Octant.Telemetry.to_json snap)
        | Json_file path ->
            let oc = open_out path in
            output_string oc (Octant.Telemetry.to_json snap);
            output_char oc '\n';
            close_out oc;
            Printf.eprintf "telemetry written to %s\n" path
      in
      Fun.protect ~finally f

let mk_bridge seed n_hosts probes =
  let deployment = Netsim.Deployment.make ~seed ~n_hosts () in
  (deployment, Eval.Bridge.create ~probes deployment)

(* --- localize --- *)

let localize seed hosts probes target no_piecewise no_geo backend harden budget refine telemetry =
  with_telemetry telemetry @@ fun () ->
  let deployment, bridge = mk_bridge seed hosts probes in
  let n = Eval.Bridge.host_count bridge in
  if target < 0 || target >= n then begin
    Printf.eprintf "target must be in [0, %d)\n" n;
    exit 1
  end;
  let all = Array.init n Fun.id in
  let landmarks = Eval.Bridge.landmarks_for bridge ~exclude:target all in
  let lm_indices = Array.of_list (List.filter (fun i -> i <> target) (Array.to_list all)) in
  let inter = Eval.Bridge.inter_rtt_for bridge lm_indices in
  let obs = Eval.Bridge.observations bridge ~landmark_indices:all ~target in
  let config =
    {
      Octant.Pipeline.default_config with
      Octant.Pipeline.use_piecewise = not no_piecewise;
      use_land_mask = not no_geo;
      whois_weight = (if no_geo then 0.0 else Octant.Pipeline.default_config.Octant.Pipeline.whois_weight);
      backend;
      harden = harden_opt harden;
      refine = refine_opt budget refine;
    }
  in
  let ctx = Octant.Pipeline.prepare ~config ~landmarks ~inter_landmark_rtt_ms:inter () in
  let est, audit =
    if telemetry = None then (Octant.Pipeline.localize ~undns:Eval.Bridge.undns ctx obs, [])
    else Octant.Pipeline.localize_audited ~undns:Eval.Bridge.undns ctx obs
  in
  let truth = Eval.Bridge.position bridge target in
  let city = Netsim.Deployment.host_city deployment (Eval.Bridge.host_id bridge target) in
  Printf.printf "target:      host %d in %s (%.3f, %.3f)\n" target city.Netsim.City.name
    truth.Geo.Geodesy.lat truth.Geo.Geodesy.lon;
  Printf.printf "estimate:    (%.3f, %.3f)\n" est.Octant.Estimate.point.Geo.Geodesy.lat
    est.Octant.Estimate.point.Geo.Geodesy.lon;
  Printf.printf "error:       %.1f miles\n" (Octant.Estimate.error_miles est truth);
  Printf.printf "region:      %.0f sq mi across %d cells (covers truth: %b)\n"
    (Octant.Estimate.region_area_sq_miles est)
    est.Octant.Estimate.cells_used
    (Octant.Estimate.covers est truth);
  Printf.printf "height:      %.2f ms\n" est.Octant.Estimate.target_height_ms;
  Printf.printf "constraints: %d\n" est.Octant.Estimate.constraints_used;
  Printf.printf "time:        %.2f s\n" est.Octant.Estimate.solve_time_s;
  if audit <> [] then begin
    Printf.printf "\nconstraint audit (%d constraints, solver order):\n" (List.length audit);
    List.iter
      (fun (e : Octant.Telemetry.Audit.entry) ->
        Printf.printf "  %-34s w=%.2f %-8s cells %3d -> %3d (%d split, %d dropped)%s\n"
          e.Octant.Telemetry.Audit.source e.Octant.Telemetry.Audit.weight
          e.Octant.Telemetry.Audit.polarity e.Octant.Telemetry.Audit.cells_before
          e.Octant.Telemetry.Audit.cells_after e.Octant.Telemetry.Audit.splits
          e.Octant.Telemetry.Audit.dropped
          (if e.Octant.Telemetry.Audit.shrank then "" else "  [kept everything]"))
      audit
  end

let localize_cmd =
  let target =
    Arg.(value & opt int 0 & info [ "target" ] ~docv:"I" ~doc:"Host index to localize.")
  in
  let no_piecewise =
    Arg.(value & flag & info [ "no-piecewise" ] ~doc:"Disable piecewise router localization.")
  in
  let no_geo = Arg.(value & flag & info [ "no-geo" ] ~doc:"Disable geographic constraints.") in
  Cmd.v
    (Cmd.info "localize" ~doc:"Localize one host of a simulated deployment")
    Term.(
      const localize $ seed_arg $ hosts_arg $ probes_arg $ target $ no_piecewise $ no_geo
      $ backend_arg $ harden_arg $ budget_arg $ refine_arg $ telemetry_arg)

(* --- calibrate --- *)

let calibrate seed hosts probes landmark =
  let _, bridge = mk_bridge seed hosts probes in
  let n = Eval.Bridge.host_count bridge in
  let all = Array.init n Fun.id in
  let landmarks = Eval.Bridge.landmarks_for bridge ~exclude:(-1) all in
  let inter = Eval.Bridge.inter_rtt_for bridge all in
  let ctx = Octant.Pipeline.prepare ~landmarks ~inter_landmark_rtt_ms:inter () in
  Eval.Report.print_figure2 (Octant.Pipeline.calibration ctx landmark)

let calibrate_cmd =
  let landmark =
    Arg.(value & opt int 0 & info [ "landmark" ] ~docv:"I" ~doc:"Landmark index to calibrate.")
  in
  Cmd.v
    (Cmd.info "calibrate" ~doc:"Print one landmark's latency-distance calibration (Figure 2)")
    Term.(const calibrate $ seed_arg $ hosts_arg $ probes_arg $ landmark)

(* --- study --- *)

let study seed hosts probes jobs backend harden budget refine telemetry =
  with_telemetry telemetry @@ fun () ->
  let config =
    {
      Octant.Pipeline.default_config with
      Octant.Pipeline.backend;
      harden = harden_opt harden;
      refine = refine_opt budget refine;
    }
  in
  let s = Eval.Study.run ~config ~seed ~n_hosts:hosts ~probes ?jobs:(jobs_opt jobs) () in
  Eval.Report.print_figure3 s;
  print_newline ();
  Eval.Report.print_timing s

let study_cmd =
  Cmd.v
    (Cmd.info "study" ~doc:"Leave-one-out comparison of all methods (Figure 3)")
    Term.(
      const study $ seed_arg $ hosts_arg $ probes_arg $ jobs_arg $ backend_arg $ harden_arg
      $ budget_arg $ refine_arg $ telemetry_arg)

(* --- sweep --- *)

let sweep seed hosts counts jobs backend harden budget refine telemetry =
  with_telemetry telemetry @@ fun () ->
  let landmark_counts =
    String.split_on_char ',' counts |> List.map String.trim |> List.map int_of_string
  in
  let config =
    {
      Octant.Pipeline.default_config with
      Octant.Pipeline.backend;
      harden = harden_opt harden;
      refine = refine_opt budget refine;
    }
  in
  let s = Eval.Sweep.run ~config ~seed ~n_hosts:hosts ~landmark_counts ?jobs:(jobs_opt jobs) () in
  Eval.Report.print_figure4 s

let sweep_cmd =
  let counts =
    Arg.(
      value
      & opt string "10,15,20,25,30,35,40,45,50"
      & info [ "counts" ] ~docv:"LIST" ~doc:"Comma-separated landmark counts.")
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Coverage vs number of landmarks (Figure 4)")
    Term.(
      const sweep $ seed_arg $ hosts_arg $ counts $ jobs_arg $ backend_arg $ harden_arg
      $ budget_arg $ refine_arg $ telemetry_arg)

(* --- ablation --- *)

let ablation seed hosts =
  Eval.Report.print_ablation (Eval.Ablation.run ~seed ~n_hosts:hosts ())

let ablation_cmd =
  Cmd.v
    (Cmd.info "ablation" ~doc:"Disable each Octant mechanism in turn")
    Term.(const ablation $ seed_arg $ hosts_arg)

(* --- stream --- *)

(* Replay a recorded observation feed through the persistent session API.
   The feed is newline-delimited JSON in the daemon's own update-frame
   shape ({!Octant_serve.Protocol}), one frame per line:

     {"op":"update","target_id":"t1","epoch":0,"rtt_ms":[12.3,...]}
     {"op":"update","target_id":"t1","epoch":1,"delta":[[3,17.2],[5,9.1]]}
     {"op":"update","target_id":"t1","retire_upto":0}

   Each applied frame prints the per-update estimate delta: how far the
   point estimate moved, how the region changed, and the session's live
   evidence.  --verify re-solves the session's constraint log from
   scratch after every frame and fails on any divergence — the prefix
   -parity contract, checkable on any recorded feed. *)
let stream seed hosts probes feed verify backend harden budget refine telemetry =
  with_telemetry telemetry @@ fun () ->
  let module Protocol = Octant_serve.Protocol in
  let module Json = Octant_serve.Json in
  let _, bridge = mk_bridge seed hosts probes in
  let n = Eval.Bridge.host_count bridge in
  let all = Array.init n Fun.id in
  let landmarks = Eval.Bridge.landmarks_for bridge ~exclude:(-1) all in
  let inter = Eval.Bridge.inter_rtt_for bridge all in
  let config =
    {
      Octant.Pipeline.default_config with
      Octant.Pipeline.backend;
      harden = harden_opt harden;
      refine = refine_opt budget refine;
    }
  in
  let ctx = Octant.Pipeline.prepare ~config ~landmarks ~inter_landmark_rtt_ms:inter () in
  let sessions = Octant.Pipeline.Sessions.create () in
  let prev : (string, Octant.Estimate.t) Hashtbl.t = Hashtbl.create 8 in
  let fail line_no fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf "%s:%d: %s\n" feed line_no msg;
        exit 1)
      fmt
  in
  let estimates_equal (a : Octant.Estimate.t) (b : Octant.Estimate.t) =
    a.Octant.Estimate.point = b.Octant.Estimate.point
    && a.Octant.Estimate.point_plane = b.Octant.Estimate.point_plane
    && a.Octant.Estimate.area_km2 = b.Octant.Estimate.area_km2
    && a.Octant.Estimate.top_weight = b.Octant.Estimate.top_weight
    && a.Octant.Estimate.cells_used = b.Octant.Estimate.cells_used
    && a.Octant.Estimate.constraints_used = b.Octant.Estimate.constraints_used
    && a.Octant.Estimate.target_height_ms = b.Octant.Estimate.target_height_ms
  in
  let report line_no kind target (est : Octant.Estimate.t) session =
    let moved =
      match Hashtbl.find_opt prev target with
      | Some p -> Geo.Geodesy.distance_km p.Octant.Estimate.point est.Octant.Estimate.point
      | None -> 0.0
    in
    Hashtbl.replace prev target est;
    Printf.printf
      "%4d  %-6s %-12s (%8.3f, %9.3f)  moved %8.2f km  area %12.0f km2  live %3d  cells %3d\n%!"
      line_no kind target est.Octant.Estimate.point.Geo.Geodesy.lat
      est.Octant.Estimate.point.Geo.Geodesy.lon moved est.Octant.Estimate.area_km2
      (Octant.Pipeline.Session.live_constraints session)
      est.Octant.Estimate.cells_used;
    if verify then begin
      let replay = Octant.Pipeline.Session.replay_estimate session in
      if not (estimates_equal est replay) then
        fail line_no "prefix parity violated for %S: incremental and batch replay diverged"
          target
    end
  in
  let apply line_no (u : Protocol.update) =
    match Protocol.base_observations_of u with
    | Some obs ->
        let session, est =
          try Octant.Pipeline.Session.create ~epoch:u.Protocol.u_epoch ctx obs
          with Invalid_argument msg -> fail line_no "bad base observations: %s" msg
        in
        let est =
          match u.Protocol.u_retire_upto with
          | Some upto -> Octant.Pipeline.Session.retire session ~upto_epoch:upto
          | None -> est
        in
        ignore (Octant.Pipeline.Sessions.add sessions u.Protocol.u_target session);
        report line_no "base" u.Protocol.u_target est session
    | None -> (
        match Octant.Pipeline.Sessions.find sessions u.Protocol.u_target with
        | None -> fail line_no "unknown session %S (no prior base frame)" u.Protocol.u_target
        | Some session ->
            let delta = Protocol.quantized_delta u in
            let est = ref (Octant.Pipeline.Session.estimate session) in
            (try
               if Array.length delta > 0 then
                 est :=
                   Octant.Pipeline.Session.fold session
                     {
                       Octant.Pipeline.Session.d_rtts = delta;
                       d_epoch = u.Protocol.u_epoch;
                     }
             with Invalid_argument msg -> fail line_no "bad delta: %s" msg);
            (match u.Protocol.u_retire_upto with
            | Some upto -> est := Octant.Pipeline.Session.retire session ~upto_epoch:upto
            | None -> ());
            let kind = if Array.length delta > 0 then "delta" else "retire" in
            report line_no kind u.Protocol.u_target !est session)
  in
  let ic = try open_in feed with Sys_error e -> Printf.eprintf "%s\n" e; exit 1 in
  let line_no = ref 0 and applied = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr line_no;
       if String.trim line <> "" then begin
         match Json.of_string line with
         | Error e -> fail !line_no "bad frame: %s" e
         | Ok json -> (
             match Protocol.parse_request json with
             | Error e -> fail !line_no "bad request: %s" e
             | Ok (Protocol.Update u) ->
                 apply !line_no u;
                 incr applied
             | Ok _ -> fail !line_no "feed frames must be updates (op=\"update\")")
       end
     done
   with End_of_file -> ());
  close_in ic;
  Printf.printf "replayed %d updates across %d live sessions%s\n" !applied
    (Octant.Pipeline.Sessions.live sessions)
    (if verify then " (prefix parity verified)" else "")

let stream_cmd =
  let feed =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FEED"
          ~doc:
            "Recorded observation feed: newline-delimited JSON update frames in the \
             daemon's wire shape.")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "After every applied frame, re-solve the session's constraint log from \
             scratch and fail on any divergence from the incremental estimate.")
  in
  Cmd.v
    (Cmd.info "stream"
       ~doc:"Replay a recorded observation feed through persistent solver sessions")
    Term.(
      const stream $ seed_arg $ hosts_arg $ probes_arg $ feed $ verify $ backend_arg
      $ harden_arg $ budget_arg $ refine_arg $ telemetry_arg)

let main =
  Cmd.group
    (Cmd.info "octant_cli" ~version:"1.0.0"
       ~doc:"Octant geolocalization framework — reproduction CLI")
    [ localize_cmd; calibrate_cmd; study_cmd; sweep_cmd; ablation_cmd; stream_cmd ]

let () = exit (Cmd.eval main)
