(* Octant as a service: a long-lived localization daemon.

   Prepares one Pipeline context at startup (deployment construction,
   heights, calibration — the expensive part every one-shot CLI run pays)
   and then serves localize requests over TCP from a single-threaded
   event loop: newline-delimited JSON frames, or length-prefixed binary
   frames for clients that open with the "OCTB" magic.  Concurrent
   requests micro-batch onto the multicore batch engine (awaited by a
   fixed worker pool) and repeated observations replay from a sharded
   LRU cache.

     octant_served --seed 7 --hosts 51 --port 7700
     echo '{"id":1,"rtt_ms":[12.5,33.1,...]}' | nc 127.0.0.1 7700

   SIGTERM / SIGINT (or a {"op":"shutdown"} frame) drains gracefully:
   queued requests are computed and answered before the process exits. *)

open Cmdliner

let seed_arg =
  Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc:"Deployment random seed.")

let hosts_arg =
  Arg.(value & opt int 51 & info [ "hosts" ] ~docv:"N" ~doc:"Number of deployed hosts (all become landmarks).")

let probes_arg =
  Arg.(value & opt int 10 & info [ "probes" ] ~docv:"K" ~doc:"Ping probes per measurement.")

let port_arg =
  Arg.(value & opt int 0 & info [ "port" ] ~docv:"PORT" ~doc:"TCP port; 0 picks an ephemeral one.")

let host_arg =
  Arg.(value & opt string "127.0.0.1" & info [ "bind" ] ~docv:"ADDR" ~doc:"Bind address.")

let jobs_arg =
  Arg.(
    value
    & opt int 0
    & info [ "jobs" ] ~docv:"J"
        ~doc:"Domains per dispatched batch; 0 uses one per available core.")

let workers_arg =
  Arg.(
    value
    & opt int 8
    & info [ "workers" ] ~docv:"N"
        ~doc:"Worker threads awaiting batched results (the event loop itself is one thread).")

let max_queue_arg =
  Arg.(
    value
    & opt int 256
    & info [ "max-queue" ] ~docv:"N" ~doc:"Admission bound; requests beyond it are shed.")

let max_batch_arg =
  Arg.(value & opt int 64 & info [ "max-batch" ] ~docv:"N" ~doc:"Requests per dispatched batch.")

let batch_delay_arg =
  Arg.(
    value
    & opt float 2.0
    & info [ "batch-delay-ms" ] ~docv:"MS" ~doc:"Coalescing window after the first queued request.")

let cache_arg =
  Arg.(
    value
    & opt int 1024
    & info [ "cache" ] ~docv:"N" ~doc:"LRU result-cache capacity; 0 disables caching.")

let cache_shards_arg =
  Arg.(
    value
    & opt int 8
    & info [ "cache-shards" ] ~docv:"N"
        ~doc:
          "Result-cache shard count (rounded down to a power of two, clamped to the \
           capacity).")

let sessions_arg =
  Arg.(
    value
    & opt int 256
    & info [ "sessions" ] ~docv:"N"
        ~doc:
          "Live streaming-session cap for {\"op\":\"update\"} clients; the \
           least-recently-touched session past it is evicted.")

let max_conns_arg =
  Arg.(
    value
    & opt int 900
    & info [ "max-conns" ] ~docv:"N"
        ~doc:
          "Live-connection cap; connections past it are closed at accept.  Must stay \
           below the select(2) FD_SETSIZE limit (1024 on Linux).")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline-ms" ] ~docv:"MS" ~doc:"Default per-request deadline when a request carries none.")

let telemetry_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry" ] ~docv:"MODE"
        ~doc:
          "Collect telemetry for the run and emit it at shutdown: $(b,json) (JSON to \
           stdout) or $(b,json:FILE).")

let backend_conv =
  let parse s =
    match Geo.Region_backend.spec_of_string s with Ok v -> Ok v | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (Geo.Region_backend.spec_to_string s))

let backend_arg =
  Arg.(
    value
    & opt backend_conv Geo.Region_backend.default
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "Region backend for every localization this daemon serves: $(b,exact), \
           $(b,grid)[:RES], or $(b,hybrid)[:CELLS].")

let harden_arg =
  Arg.(
    value & flag
    & info [ "harden" ]
        ~doc:
          "Enable Byzantine-landmark hardening for every localization this \
           daemon serves: consistency-score each landmark's latency \
           constraint against the consensus region, down-weight repeat \
           offenders, and trim far-flung weight-band cells at estimate \
           extraction.")

let budget_arg =
  Arg.(
    value
    & opt int 0
    & info [ "landmark-budget" ] ~docv:"K"
        ~doc:
          "Admit at most $(docv) ranked landmarks per served localization \
           (0, the default, means no budget; alone it is a single admission \
           round, with $(b,--refine) it bounds the anytime loop).")

let refine_arg =
  Arg.(
    value & flag
    & info [ "refine" ]
        ~doc:
          "Enable anytime refinement for every localization this daemon \
           serves: admit landmarks best-ranked first and stop early once \
           the weighted best cell is stable. Composes with $(b,--harden).")

(* Mirrors octant_cli's flag semantics: budget alone is one admission round
   (initial = step = budget), --refine turns the early exit on. *)
let refine_opt budget refine =
  if refine then
    Some
      (if budget > 0 then
         { Octant.Solver.default_refine with Octant.Solver.budget = budget }
       else Octant.Solver.default_refine)
  else if budget > 0 then
    Some
      {
        Octant.Solver.default_refine with
        Octant.Solver.budget = budget;
        initial = budget;
        step = budget;
      }
  else None

let serve seed hosts probes port host jobs workers max_queue max_batch batch_delay_ms cache
    cache_shards sessions max_conns deadline backend harden budget refine telemetry =
  let telemetry_sink =
    match telemetry with
    | None -> None
    | Some "json" -> Some None
    | Some s when String.starts_with ~prefix:"json:" s ->
        Some (Some (String.sub s 5 (String.length s - 5)))
    | Some other ->
        Printf.eprintf "invalid --telemetry mode %S (json | json:FILE)\n" other;
        exit 2
  in
  if telemetry_sink <> None then begin
    Octant.Telemetry.reset ();
    Octant.Telemetry.enable ()
  end;
  (* Resident context: all hosts of the simulated deployment act as the
     landmark set clients measure against. *)
  let deployment = Netsim.Deployment.make ~seed ~n_hosts:hosts () in
  let bridge = Eval.Bridge.create ~probes deployment in
  let n = Eval.Bridge.host_count bridge in
  let all = Array.init n Fun.id in
  let landmarks = Eval.Bridge.landmarks_for bridge ~exclude:(-1) all in
  let inter = Eval.Bridge.inter_rtt_for bridge all in
  let ctx =
    Octant.Pipeline.prepare
      ~config:
        {
          Octant.Pipeline.default_config with
          Octant.Pipeline.backend;
          harden = (if harden then Some Octant.Harden.default else None);
          refine = refine_opt budget refine;
        }
      ~landmarks ~inter_landmark_rtt_ms:inter ()
  in
  let config =
    {
      Octant_serve.Server.default_config with
      Octant_serve.Server.host;
      port;
      jobs = (if jobs = 0 then None else Some jobs);
      workers;
      max_queue;
      max_batch;
      batch_delay_s = batch_delay_ms /. 1000.0;
      cache_capacity = cache;
      cache_shards;
      session_capacity = sessions;
      max_connections = max_conns;
      default_deadline_ms = deadline;
    }
  in
  let srv = Octant_serve.Server.start ~config ~ctx () in
  Printf.printf "octant_served listening on %s:%d (%d landmarks, jobs=%s)\n%!" host
    (Octant_serve.Server.port srv)
    (Octant.Pipeline.landmark_count ctx)
    (if jobs = 0 then "auto" else string_of_int jobs);
  let on_signal _ = Octant_serve.Server.request_shutdown srv in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  Octant_serve.Server.wait srv;
  Printf.printf "octant_served draining...\n%!";
  Octant_serve.Server.stop srv;
  (match telemetry_sink with
  | None -> ()
  | Some dest -> (
      Octant.Telemetry.disable ();
      let json = Octant.Telemetry.to_json (Octant.Telemetry.snapshot ()) in
      match dest with
      | None -> print_endline json
      | Some path ->
          let oc = open_out path in
          output_string oc json;
          output_char oc '\n';
          close_out oc;
          Printf.eprintf "telemetry written to %s\n" path));
  Printf.printf "octant_served stopped\n%!"

let main =
  Cmd.v
    (Cmd.info "octant_served" ~version:"1.0.0"
       ~doc:"Octant localization daemon (newline-delimited JSON over TCP)")
    Term.(
      const serve $ seed_arg $ hosts_arg $ probes_arg $ port_arg $ host_arg $ jobs_arg
      $ workers_arg $ max_queue_arg $ max_batch_arg $ batch_delay_arg $ cache_arg
      $ cache_shards_arg $ sessions_arg $ max_conns_arg $ deadline_arg $ backend_arg
      $ harden_arg $ budget_arg $ refine_arg $ telemetry_arg)

let () = exit (Cmd.eval main)
